//! Assembly emission for the four architectures of Table 11.1: DEC Alpha,
//! MIPS, POWER and SPARC.
//!
//! The goal is to reproduce the *shape* of the paper's generated code —
//! the instruction kinds and counts, the absence of any divide
//! instruction, MIPS's `multu`/`mfhi` pair, SPARC's `umul`/`rd %y`, and
//! Alpha's scaled-add (`s4addq`/`s8addq`) expansion of the magic-constant
//! multiply — not 1994 GCC's exact register choices.
//!
//! Emission is a linear scan over the (already optimized) IR with
//! last-use register recycling; the straight-line programs the paper
//! generates never exceed a RISC temp pool.

use std::collections::HashMap;
use std::fmt;

use magicdiv_ir::{mask, Op, Program, Reg};

/// One of the paper's four evaluation architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Target {
    /// DEC Alpha 21064: 64-bit, no integer divide instruction, scaled adds.
    Alpha,
    /// MIPS R3000/R4000: `multu` + `mfhi`, HI/LO registers.
    Mips,
    /// IBM POWER / PowerPC: `mulhwu`-style high multiply.
    Power,
    /// SPARC V8: `umul` + `rd %y`.
    Sparc,
    /// Intel x86 (386/486/Pentium — the Table 1.1 CISC rows): two-address
    /// code, multiply/divide through the implicit `EDX:EAX` pair.
    X86,
}

impl Target {
    /// All four targets, in the paper's column order.
    pub const ALL: [Target; 4] = [Target::Alpha, Target::Mips, Target::Power, Target::Sparc];

    /// Human-readable architecture name.
    pub fn name(self) -> &'static str {
        match self {
            Target::Alpha => "Alpha",
            Target::Mips => "MIPS",
            Target::Power => "POWER",
            Target::Sparc => "SPARC",
            Target::X86 => "x86",
        }
    }

    fn temp_registers(self) -> Vec<String> {
        match self {
            Target::Alpha => (1..=8).chain(22..=25).map(|i| format!("${i}")).collect(),
            Target::Mips => [4, 5, 6, 7]
                .into_iter()
                .chain(8..=15)
                .chain([24, 25, 2, 3])
                .map(|i| format!("${i}"))
                .collect(),
            Target::Power => (3..=12).map(|i| format!("{i}")).collect(),
            Target::Sparc => [
                "%o0", "%o1", "%o2", "%o3", "%o4", "%o5", "%g1", "%g2", "%g3", "%g4", "%l0", "%l1",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            // eax/edx are reserved: one-operand mul/div clobber them.
            Target::X86 => ["ecx", "ebx", "edi", "ebp"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }

    /// The register holding argument `i` under the target's calling
    /// convention.
    pub fn arg_register(self, i: u32) -> String {
        match self {
            Target::Alpha => format!("${}", 16 + i),
            Target::Mips => format!("${}", 4 + i),
            Target::Power => format!("{}", 3 + i),
            Target::Sparc => format!("%o{i}"),
            Target::X86 => ["eax", "edx"][i as usize].to_string(),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An emitted assembly listing.
#[derive(Debug, Clone)]
pub struct Assembly {
    /// Which architecture the listing targets.
    pub target: Target,
    /// The instruction lines (tab-indented mnemonics, label lines flush).
    pub lines: Vec<String>,
}

impl Assembly {
    /// Number of machine instructions (label and comment lines excluded).
    pub fn instruction_count(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| {
                !l.trim_start().starts_with('#')
                    && !l.trim_end().ends_with(':')
                    && !l.trim().is_empty()
            })
            .count()
    }

    /// `true` if any instruction uses a divide (or divide-subroutine)
    /// mnemonic. Labels (flush-left lines) and comments are ignored.
    pub fn uses_divide(&self) -> bool {
        self.lines.iter().any(|l| {
            if !l.starts_with('\t') {
                return false; // label line
            }
            let t = l.trim_start();
            if t.starts_with('#') {
                return false;
            }
            t.starts_with("div")
                || t.starts_with("udiv")
                || t.starts_with("sdiv")
                || t.contains("__div")
                || t.contains("__rem")
        })
    }
}

impl fmt::Display for Assembly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

struct Emitter {
    target: Target,
    lines: Vec<String>,
    /// Constant materializations, kept separate so loop emitters can hoist
    /// them out of the loop body (as the paper's listings do).
    const_lines: Vec<String>,
    emit_to_consts: bool,
    /// Free temp registers (reverse-ordered stack).
    free: Vec<String>,
    /// value index -> currently assigned register.
    loc: HashMap<usize, String>,
    /// value index -> index of its last use.
    last_use: Vec<usize>,
    use_count: Vec<usize>,
}

impl Emitter {
    fn new(target: Target, prog: &Program) -> Self {
        let n = prog.insts().len();
        let mut last_use = vec![usize::MAX; n];
        let mut use_count = vec![0usize; n];
        for (i, op) in prog.insts().iter().enumerate() {
            for r in op.operands() {
                last_use[r.index()] = i;
                use_count[r.index()] += 1;
            }
        }
        for r in prog.results() {
            last_use[r.index()] = n; // live out
            use_count[r.index()] += 1;
        }
        // Constants are hoisted out of loop kernels, so their registers
        // must never be recycled mid-body (iteration 2 would read a
        // clobbered register otherwise).
        for (i, op) in prog.insts().iter().enumerate() {
            if matches!(op, Op::Const(_)) {
                last_use[i] = n;
            }
        }
        let mut free = target.temp_registers();
        free.reverse();
        Emitter {
            target,
            lines: Vec::new(),
            const_lines: Vec::new(),
            emit_to_consts: false,
            free,
            loc: HashMap::new(),
            last_use,
            use_count,
        }
    }

    fn emit(&mut self, line: String) {
        if self.emit_to_consts {
            self.const_lines.push(format!("\t{line}"));
        } else {
            self.lines.push(format!("\t{line}"));
        }
    }

    fn comment(&mut self, text: &str) {
        self.lines.push(format!("\t# {text}"));
    }

    fn alloc(&mut self, value: usize) -> String {
        let reg = self
            .free
            .pop()
            .expect("register pool exhausted (program too large for straight-line allocation)");
        self.loc.insert(value, reg.clone());
        reg
    }

    /// Claims a specific register from the pool for `value`; returns
    /// `false` when the register is not in the pool.
    fn alloc_specific(&mut self, value: usize, name: &str) -> bool {
        match self.free.iter().position(|r| r == name) {
            Some(pos) => {
                let reg = self.free.remove(pos);
                self.loc.insert(value, reg);
                true
            }
            None => false,
        }
    }

    fn reg(&self, r: Reg) -> String {
        self.loc
            .get(&r.index())
            .expect("register allocator assigned every live value")
            .clone()
    }

    fn release_dead(&mut self, at: usize, op: &Op) {
        for r in op.operands() {
            if self.last_use[r.index()] == at {
                if let Some(reg) = self.loc.remove(&r.index()) {
                    self.free.push(reg);
                }
            }
        }
    }
}

/// Emits `prog` as an assembly listing for `target`.
///
/// The 32-bit operation set is mapped per architecture; on Alpha (a 64-bit
/// machine) 32-bit programs are computed in 64-bit registers exactly as
/// the paper's Table 11.1 does, including expanding `MULUH` by a magic
/// constant into scaled adds when profitable.
///
/// # Panics
///
/// Panics if the program needs more simultaneously-live values than the
/// target's temp pool (never the case for the paper's sequences).
///
/// # Examples
///
/// ```
/// use magicdiv_codegen::{gen_unsigned_div, emit_assembly, Target};
///
/// let prog = gen_unsigned_div(10, 32);
/// let asm = emit_assembly(&prog, Target::Mips, "udiv10");
/// assert!(asm.to_string().contains("multu"));
/// assert!(!asm.uses_divide());
/// ```
pub fn emit_assembly(prog: &Program, target: Target, name: &str) -> Assembly {
    let body = emit_body(prog, target);
    let mut lines = vec![format!("{name}:")];
    lines.extend(body.const_lines.iter().cloned());
    lines.extend(body.lines.iter().cloned());
    // Move results to return registers.
    let ret_names: Vec<&str> = match target {
        Target::Alpha => vec!["$0", "$1"],
        Target::Mips => vec!["$2", "$3"],
        Target::Power => vec!["3", "4"],
        Target::Sparc => vec!["%o0", "%o1"],
        Target::X86 => vec!["eax", "edx"],
    };
    for (src, dstn) in body.result_regs.iter().zip(&ret_names) {
        if src != dstn {
            lines.push(match target {
                Target::Alpha => format!("\tbis {src},{src},{dstn}"),
                Target::Mips => format!("\tmove {dstn},{src}"),
                Target::Power => format!("\tmr {dstn},{src}"),
                Target::Sparc => format!("\tmov {src},{dstn}"),
                Target::X86 => format!("\tmov {dstn},{src}"),
            });
        }
    }
    match target {
        Target::Alpha => lines.push("\tret $31,($26),1".into()),
        Target::Mips => lines.push("\tj $31".into()),
        Target::Power => lines.push("\tbr".into()),
        Target::Sparc => {
            lines.push("\tretl".into());
            lines.push("\tnop".into());
        }
        Target::X86 => lines.push("\tret".into()),
    }
    Assembly { target, lines }
}

/// A function body without prologue/epilogue: the instruction lines plus
/// the registers holding each result (used by the loop-kernel emitters).
#[derive(Debug, Clone)]
pub struct EmittedBody {
    /// Constant materializations (loop-invariant; emit before any loop).
    pub const_lines: Vec<String>,
    /// Tab-indented instruction lines.
    pub lines: Vec<String>,
    /// Register names holding each program result, in order.
    pub result_regs: Vec<String>,
}

/// Emits just the body of `prog` for `target` (no label, no return),
/// reporting where the results live.
pub fn emit_body(prog: &Program, target: Target) -> EmittedBody {
    let mut e = Emitter::new(target, prog);
    let w = prog.width();

    // Alpha fold map: values whose Sll is folded into a scaled add.
    // value index -> (base reg value, shift) for shift in {2,3}.
    let mut alpha_fold: HashMap<usize, (Reg, u32)> = HashMap::new();
    if target == Target::Alpha {
        for (i, op) in prog.insts().iter().enumerate() {
            if let Op::Sll(a, sh @ (2 | 3)) = op {
                if e.use_count[i] == 1 {
                    // Only fold when the single use is an Add (either
                    // operand) or the *scaled* (first) operand of a Sub —
                    // s4subq computes 4*a - b, not a - 4*b.
                    let foldable = prog.insts().iter().any(|o| {
                        matches!(o, Op::Add(x, y) if x.index() == i || y.index() == i)
                            || matches!(o, Op::Sub(x, _) if x.index() == i)
                    });
                    if foldable {
                        alpha_fold.insert(i, (*a, *sh));
                    }
                }
            }
        }
    }

    // Pre-pass A: pin arguments to their calling-convention registers
    // when those registers are in the temp pool (MIPS/POWER/SPARC keep x
    // in the incoming register, as the paper's listings do).
    for (i, op) in prog.insts().iter().enumerate() {
        if let Op::Arg(k) = op {
            let conv = target.arg_register(*k);
            e.alloc_specific(i, &conv);
        }
    }
    // Pre-pass B: materialize every constant, so constant registers are
    // claimed before any body instruction and (being live-out) are never
    // recycled — the loop emitters hoist these loads out of the loop,
    // which is only sound if no body instruction touches them. (x86 folds
    // constants as immediate operands instead — it has imm32 forms and
    // only four free registers.)
    for (i, op) in prog.insts().iter().enumerate() {
        if target == Target::X86 {
            break;
        }
        if let Op::Const(c) = op {
            e.emit_to_consts = true;
            let dst = e.alloc(i);
            load_const(&mut e, &dst, *c, w);
            e.emit_to_consts = false;
        }
    }

    for (i, op) in prog.insts().iter().enumerate() {
        if matches!(op, Op::Const(_)) && target != Target::X86 {
            continue; // materialized in the pre-pass
        }
        if matches!(op, Op::Arg(_)) && e.loc.contains_key(&i) {
            continue; // pinned to its incoming register in pre-pass A
        }
        if alpha_fold.contains_key(&i) {
            // Folded into the consuming scaled add; emit nothing, but the
            // base must stay live until the consumer — conservatively keep
            // our own last_use bookkeeping: extend base's last use.
            let (base, _) = alpha_fold[&i];
            let consumer = e.last_use[i];
            if e.last_use[base.index()] < consumer {
                e.last_use[base.index()] = consumer;
            }
            continue;
        }
        emit_one(&mut e, prog, i, op, w, &alpha_fold);
        e.release_dead(i, op);
    }

    let result_regs = prog.results().iter().map(|r| e.reg(*r)).collect();
    EmittedBody {
        const_lines: e.const_lines,
        lines: e.lines,
        result_regs,
    }
}

fn load_const(e: &mut Emitter, dst: &str, c: u64, width: u32) {
    let c = c & mask(width);
    match e.target {
        Target::Alpha => {
            // lda/ldah build 32-bit constants; wider ones via shifts. For
            // listing purposes emit the canonical pair (or one lda).
            if c <= 0x7fff {
                e.emit(format!("lda {dst},{c}"));
            } else if c <= 0xffff_ffff {
                let hi = (c >> 16) & 0xffff;
                let lo = c & 0xffff;
                e.emit(format!("ldah {dst},{hi}($31)"));
                if lo != 0 {
                    e.emit(format!("lda {dst},{lo}({dst})"));
                }
            } else {
                e.emit(format!("ldiq {dst},{c:#x}")); // assembler macro
            }
        }
        Target::Mips => {
            let hi = (c >> 16) & 0xffff;
            let lo = c & 0xffff;
            if hi != 0 {
                e.emit(format!("lui {dst},0x{hi:x}"));
                if lo != 0 {
                    e.emit(format!("ori {dst},{dst},0x{lo:x}"));
                }
            } else {
                e.emit(format!("li {dst},0x{lo:x}"));
            }
        }
        Target::Power => {
            let hi = (c >> 16) & 0xffff;
            let lo = c & 0xffff;
            if hi != 0 {
                e.emit(format!("cau {dst},0,0x{hi:x}"));
                if lo != 0 {
                    e.emit(format!("oril {dst},{dst},0x{lo:x}"));
                }
            } else {
                e.emit(format!("cal {dst},0x{lo:x}(0)"));
            }
        }
        Target::Sparc => {
            if c < 0x1000 {
                e.emit(format!("mov {c},{dst}"));
            } else {
                e.emit(format!("sethi %hi(0x{c:x}),{dst}"));
                if c & 0x3ff != 0 {
                    e.emit(format!("or {dst},%lo(0x{c:x}),{dst}"));
                }
            }
        }
        Target::X86 => {
            e.emit(format!("mov {dst},0x{c:x}"));
        }
    }
}

#[allow(clippy::too_many_lines)]
fn emit_one(
    e: &mut Emitter,
    prog: &Program,
    i: usize,
    op: &Op,
    w: u32,
    alpha_fold: &HashMap<usize, (Reg, u32)>,
) {
    if e.target == Target::X86 {
        emit_one_x86(e, prog, i, op);
        return;
    }
    // Resolve an operand that may be a folded Alpha scaled shift.
    let scaled = |e: &Emitter, r: Reg| -> Option<(String, u32)> {
        alpha_fold
            .get(&r.index())
            .map(|(base, sh)| (e.reg(*base), *sh))
    };
    match *op {
        Op::Arg(k) => {
            let argreg = e.target.arg_register(k);
            let dst = e.alloc(i);
            if dst != argreg {
                match e.target {
                    Target::Alpha => {
                        if w == 32 {
                            // zapnot zero-extends the 32-bit argument into
                            // the 64-bit working register (Table 11.1's
                            // `zapnot $16,15,$3`).
                            e.emit(format!("zapnot {argreg},15,{dst}"));
                        } else {
                            e.emit(format!("bis {argreg},{argreg},{dst}"));
                        }
                    }
                    Target::Mips => e.emit(format!("move {dst},{argreg}")),
                    Target::Power => e.emit(format!("mr {dst},{argreg}")),
                    Target::Sparc => e.emit(format!("mov {argreg},{dst}")),
                    Target::X86 => unreachable!("x86 uses emit_one_x86"),
                }
            }
        }
        Op::Const(c) => {
            let dst = e.alloc(i);
            load_const(e, &dst, c, w);
        }
        Op::Add(a, b) => {
            // Alpha scaled-add folding: 4*x + y / 8*x + y.
            if e.target == Target::Alpha {
                if let Some((base, sh)) = scaled(e, a) {
                    let yb = e.reg(b);
                    let dst = e.alloc(i);
                    let mn = if sh == 2 { "s4addq" } else { "s8addq" };
                    e.emit(format!("{mn} {base},{yb},{dst}"));
                    return;
                }
                if let Some((base, sh)) = scaled(e, b) {
                    let ya = e.reg(a);
                    let dst = e.alloc(i);
                    let mn = if sh == 2 { "s4addq" } else { "s8addq" };
                    e.emit(format!("{mn} {base},{ya},{dst}"));
                    return;
                }
            }
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("addq {ra},{rb},{dst}")),
                Target::Mips => e.emit(format!("addu {dst},{ra},{rb}")),
                Target::Power => e.emit(format!("a {dst},{ra},{rb}")),
                Target::Sparc => e.emit(format!("add {ra},{rb},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Sub(a, b) => {
            if e.target == Target::Alpha {
                if let Some((base, sh)) = scaled(e, a) {
                    let yb = e.reg(b);
                    let dst = e.alloc(i);
                    let mn = if sh == 2 { "s4subq" } else { "s8subq" };
                    e.emit(format!("{mn} {base},{yb},{dst}"));
                    return;
                }
            }
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("subq {ra},{rb},{dst}")),
                Target::Mips => e.emit(format!("subu {dst},{ra},{rb}")),
                Target::Power => e.emit(format!("sf {dst},{rb},{ra}")),
                Target::Sparc => e.emit(format!("sub {ra},{rb},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Neg(a) => {
            let ra = e.reg(a);
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("subq $31,{ra},{dst}")),
                Target::Mips => e.emit(format!("negu {dst},{ra}")),
                Target::Power => e.emit(format!("neg {dst},{ra}")),
                Target::Sparc => e.emit(format!("sub %g0,{ra},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::MulL(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("mulq {ra},{rb},{dst}")),
                Target::Mips => {
                    e.emit(format!("multu {ra},{rb}"));
                    e.emit(format!("mflo {dst}"));
                }
                Target::Power => e.emit(format!("muls {dst},{ra},{rb}")),
                Target::Sparc => e.emit(format!("umul {ra},{rb},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::MulUH(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => {
                    if w == 32 {
                        // 64-bit full product then a 32-bit shift down.
                        e.emit(format!("mulq {ra},{rb},{dst}"));
                        e.emit(format!("srl {dst},32,{dst}"));
                    } else {
                        e.emit(format!("umulh {ra},{rb},{dst}"));
                    }
                }
                Target::Mips => {
                    e.emit(format!("multu {ra},{rb}"));
                    e.emit(format!("mfhi {dst}"));
                }
                Target::Power => e.emit(format!("mulhwu {dst},{ra},{rb}")),
                Target::Sparc => {
                    e.emit(format!("umul {ra},{rb},%g0"));
                    e.emit(format!("rd %y,{dst}"));
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::MulSH(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => {
                    if w == 32 {
                        e.emit(format!("mulq {ra},{rb},{dst}"));
                        e.emit(format!("sra {dst},32,{dst}"));
                    } else {
                        // No mulsh on Alpha: umulh + the §3 correction.
                        e.emit(format!("umulh {ra},{rb},{dst}"));
                        e.comment("mulsh correction: dst -= (a<0 ? b : 0) + (b<0 ? a : 0)");
                        e.emit(format!("sra {ra},63,$28"));
                        e.emit(format!("and $28,{rb},$28"));
                        e.emit(format!("subq {dst},$28,{dst}"));
                        e.emit(format!("sra {rb},63,$28"));
                        e.emit(format!("and $28,{ra},$28"));
                        e.emit(format!("subq {dst},$28,{dst}"));
                    }
                }
                Target::Mips => {
                    e.emit(format!("mult {ra},{rb}"));
                    e.emit(format!("mfhi {dst}"));
                }
                Target::Power => e.emit(format!("mulhw {dst},{ra},{rb}")),
                Target::Sparc => {
                    e.emit(format!("smul {ra},{rb},%g0"));
                    e.emit(format!("rd %y,{dst}"));
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::And(a, b) | Op::Or(a, b) | Op::Eor(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            let (alpha, mips, power, sparc) = match op {
                Op::And(..) => ("and", "and", "and", "and"),
                Op::Or(..) => ("bis", "or", "or", "or"),
                _ => ("xor", "xor", "xor", "xor"),
            };
            match e.target {
                Target::Alpha => e.emit(format!("{alpha} {ra},{rb},{dst}")),
                Target::Mips => e.emit(format!("{mips} {dst},{ra},{rb}")),
                Target::Power => e.emit(format!("{power} {dst},{ra},{rb}")),
                Target::Sparc => e.emit(format!("{sparc} {ra},{rb},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Not(a) => {
            let ra = e.reg(a);
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("ornot $31,{ra},{dst}")),
                Target::Mips => e.emit(format!("nor {dst},{ra},$0")),
                Target::Power => e.emit(format!("sfi {dst},{ra},-1")),
                Target::Sparc => e.emit(format!("xnor {ra},%g0,{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Sll(a, n) | Op::Srl(a, n) | Op::Sra(a, n) => {
            let ra = e.reg(a);
            let dst = e.alloc(i);
            let kind = match op {
                Op::Sll(..) => 0,
                Op::Srl(..) => 1,
                _ => 2,
            };
            match e.target {
                Target::Alpha => {
                    // 32-bit programs run zero-extended in 64-bit regs:
                    // logical shifts need the 64-bit counts adjusted only
                    // for SRA (sign lives at bit 31). Keep it simple: for
                    // w == 32 sra first sign-extends with addl.
                    match kind {
                        0 => {
                            e.emit(format!("sll {ra},{n},{dst}"));
                            if w == 32 {
                                e.emit(format!("zapnot {dst},15,{dst}"));
                            }
                        }
                        1 => e.emit(format!("srl {ra},{n},{dst}")),
                        _ => {
                            if w == 32 {
                                e.emit(format!("addl {ra},0,{dst}")); // sign-extend
                                e.emit(format!("sra {dst},{n},{dst}"));
                                e.emit(format!("zapnot {dst},15,{dst}"));
                            } else {
                                e.emit(format!("sra {ra},{n},{dst}"));
                            }
                        }
                    }
                }
                Target::Mips => {
                    let mn = ["sll", "srl", "sra"][kind];
                    e.emit(format!("{mn} {dst},{ra},{n}"));
                }
                Target::Power => {
                    let mn = ["sli", "sri", "srai"][kind];
                    e.emit(format!("{mn} {dst},{ra},{n}"));
                }
                Target::Sparc => {
                    let mn = ["sll", "srl", "sra"][kind];
                    e.emit(format!("{mn} {ra},{n},{dst}"));
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Xsign(a) => {
            let ra = e.reg(a);
            let dst = e.alloc(i);
            let n = w - 1;
            match e.target {
                Target::Alpha => {
                    if w == 32 {
                        e.emit(format!("addl {ra},0,{dst}"));
                        e.emit(format!("sra {dst},31,{dst}"));
                        e.emit(format!("zapnot {dst},15,{dst}"));
                    } else {
                        e.emit(format!("sra {ra},63,{dst}"));
                    }
                }
                Target::Mips => e.emit(format!("sra {dst},{ra},{n}")),
                Target::Power => e.emit(format!("srai {dst},{ra},{n}")),
                Target::Sparc => e.emit(format!("sra {ra},{n},{dst}")),
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::SltS(a, b) | Op::SltU(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            let signed = matches!(op, Op::SltS(..));
            match e.target {
                Target::Alpha => {
                    let mn = if signed { "cmplt" } else { "cmpult" };
                    e.emit(format!("{mn} {ra},{rb},{dst}"));
                }
                Target::Mips => {
                    let mn = if signed { "slt" } else { "sltu" };
                    e.emit(format!("{mn} {dst},{ra},{rb}"));
                }
                Target::Power => {
                    // POWER lacks set-less-than; the classic expansion.
                    e.comment("slt via subfc/subfe carry sequence");
                    e.emit(format!(
                        "{} {dst},{ra},{rb}",
                        if signed { "slt.pseudo" } else { "sltu.pseudo" }
                    ));
                }
                Target::Sparc => {
                    e.emit(format!("cmp {ra},{rb}"));
                    e.emit(format!("addx %g0,0,{dst}"));
                    if signed {
                        e.comment("signed variant uses bl/set sequence on V8");
                    }
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Carry(a, b) => {
            // Carry-out of the unsigned word add (the Fig 8.1 doubleword
            // sums). Machines with a carry flag read it directly; the
            // others recompute it as an unsigned compare of the wrapped
            // sum against an addend.
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => {
                    if w == 32 {
                        // Zero-extended 32-bit operands: the carry is
                        // bit 32 of the exact 64-bit sum.
                        e.emit(format!("addq {ra},{rb},$28"));
                        e.emit(format!("srl $28,32,{dst}"));
                    } else {
                        e.emit(format!("addq {ra},{rb},$28"));
                        e.emit(format!("cmpult $28,{ra},{dst}"));
                    }
                }
                Target::Mips => {
                    e.emit(format!("addu {dst},{ra},{rb}"));
                    e.emit(format!("sltu {dst},{dst},{ra}"));
                }
                Target::Power => {
                    e.comment("carry-out via XER CA: a sets it, aze reads it");
                    e.emit(format!("a {dst},{ra},{rb}"));
                    e.emit(format!("lil {dst},0"));
                    e.emit(format!("aze {dst},{dst}"));
                }
                Target::Sparc => {
                    e.emit(format!("addcc {ra},{rb},%g0"));
                    e.emit(format!("addx %g0,0,{dst}"));
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::Borrow(a, b) => {
            // Borrow-out of the unsigned word subtract: exactly the
            // unsigned a < b compare.
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            match e.target {
                Target::Alpha => e.emit(format!("cmpult {ra},{rb},{dst}")),
                Target::Mips => e.emit(format!("sltu {dst},{ra},{rb}")),
                Target::Power => {
                    e.comment("borrow = 1 - CA after subtract-from");
                    e.emit(format!("sf {dst},{rb},{ra}"));
                    e.emit(format!("sfe {dst},{dst},{dst}"));
                    e.emit(format!("neg {dst},{dst}"));
                }
                Target::Sparc => {
                    e.emit(format!("cmp {ra},{rb}"));
                    e.emit(format!("addx %g0,0,{dst}"));
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
        Op::DivU(a, b) | Op::DivS(a, b) | Op::RemU(a, b) | Op::RemS(a, b) => {
            let (ra, rb) = (e.reg(a), e.reg(b));
            let dst = e.alloc(i);
            let (unsigned, rem) = match op {
                Op::DivU(..) => (true, false),
                Op::DivS(..) => (false, false),
                Op::RemU(..) => (true, true),
                _ => (false, true),
            };
            match e.target {
                Target::Alpha => {
                    // No divide instruction: a library call (the paper's
                    // Table 11.2 footnote).
                    let f = match (unsigned, rem) {
                        (true, false) => "__divqu",
                        (false, false) => "__divq",
                        (true, true) => "__remqu",
                        (false, true) => "__remq",
                    };
                    e.emit(format!("bis {ra},{ra},$24"));
                    e.emit(format!("bis {rb},{rb},$25"));
                    e.emit(format!("jsr $23,{f}"));
                    e.emit(format!("bis $27,$27,{dst}"));
                }
                Target::Mips => {
                    let mn = if unsigned { "divu" } else { "div" };
                    e.emit(format!("{mn} $0,{ra},{rb}"));
                    e.emit(format!("{} {dst}", if rem { "mfhi" } else { "mflo" }));
                }
                Target::Power => {
                    let mn = if unsigned { "divwu" } else { "divw" };
                    if rem {
                        e.emit(format!("{mn} {dst},{ra},{rb}"));
                        e.emit(format!("muls {dst},{dst},{rb}"));
                        e.emit(format!("sf {dst},{dst},{ra}"));
                    } else {
                        e.emit(format!("{mn} {dst},{ra},{rb}"));
                    }
                }
                Target::Sparc => {
                    let mn = if unsigned { "udiv" } else { "sdiv" };
                    e.emit("wr %g0,%g0,%y".into());
                    if rem {
                        e.emit(format!("{mn} {ra},{rb},{dst}"));
                        e.emit(format!("smul {dst},{rb},{dst}"));
                        e.emit(format!("sub {ra},{dst},{dst}"));
                    } else {
                        e.emit(format!("{mn} {ra},{rb},{dst}"));
                    }
                }
                Target::X86 => unreachable!("x86 uses emit_one_x86"),
            }
        }
    }
    let _ = prog;
}

/// Two-address x86 emission: every value-producing op starts with a
/// `mov dst, src1`, multiplies and divides go through `EDX:EAX`,
/// constants fold as `imm32` operands (x86 has them; the pool only has
/// four registers once `eax`/`edx` are reserved for `mul`/`div`).
fn emit_one_x86(e: &mut Emitter, prog: &Program, i: usize, op: &Op) {
    // Resolve an operand to either its register name or an immediate.
    let rm = |e: &Emitter, r: Reg| -> (String, bool) {
        match prog.insts()[r.index()] {
            Op::Const(c) => (format!("0x{c:x}"), true),
            _ => (e.reg(r), false),
        }
    };
    let two_addr = |e: &mut Emitter, i: usize, mn: &str, a: Reg, b: Reg| {
        let (ra, a_imm) = rm(e, a);
        let (rb, _) = rm(e, b);
        let dst = e.alloc(i);
        // An immediate first operand always needs staging; a register one
        // only when allocation picked a different destination.
        if a_imm || dst != ra {
            e.emit(format!("mov {dst},{ra}"));
        }
        e.emit(format!("{mn} {dst},{rb}"));
    };
    let unary = |e: &mut Emitter, i: usize, mn: &str, a: Reg| {
        let (ra, _) = rm(e, a);
        let dst = e.alloc(i);
        if dst != ra {
            e.emit(format!("mov {dst},{ra}"));
        }
        e.emit(format!("{mn} {dst}"));
    };
    let shift = |e: &mut Emitter, i: usize, mn: &str, a: Reg, n: u32| {
        let (ra, _) = rm(e, a);
        let dst = e.alloc(i);
        if dst != ra {
            e.emit(format!("mov {dst},{ra}"));
        }
        e.emit(format!("{mn} {dst},{n}"));
    };
    match *op {
        Op::Arg(k) => {
            let argreg = e.target.arg_register(k);
            let dst = e.alloc(i);
            // eax is not in the pool, so this always moves the argument
            // into a callee-chosen register (eax stays free for mul/div).
            e.emit(format!("mov {dst},{argreg}"));
        }
        Op::Const(_) => {
            // Folded as an immediate at each use; nothing to emit.
        }
        Op::Add(a, b) => two_addr(e, i, "add", a, b),
        Op::Sub(a, b) => two_addr(e, i, "sub", a, b),
        Op::And(a, b) => two_addr(e, i, "and", a, b),
        Op::Or(a, b) => two_addr(e, i, "or", a, b),
        Op::Eor(a, b) => two_addr(e, i, "xor", a, b),
        Op::MulL(a, b) => two_addr(e, i, "imul", a, b), // imul r32, r/m32/imm32
        Op::Neg(a) => unary(e, i, "neg", a),
        Op::Not(a) => unary(e, i, "not", a),
        Op::Sll(a, n) => shift(e, i, "shl", a, n),
        Op::Srl(a, n) => shift(e, i, "shr", a, n),
        Op::Sra(a, n) => shift(e, i, "sar", a, n),
        Op::Xsign(a) => shift(e, i, "sar", a, 31),
        Op::MulUH(a, b) | Op::MulSH(a, b) => {
            // One-operand mul/imul: EDX:EAX = EAX * r/m32. The r/m operand
            // must be a register, so when one side is a constant put it in
            // EAX (multiplication commutes).
            let mn = if matches!(op, Op::MulUH(..)) {
                "mul"
            } else {
                "imul"
            };
            let (ra, a_imm) = rm(e, a);
            let (rb, b_imm) = rm(e, b);
            let dst = e.alloc(i);
            match (a_imm, b_imm) {
                (false, false) | (true, false) => {
                    e.emit(format!("mov eax,{ra}"));
                    e.emit(format!("{mn} {rb}"));
                }
                (false, true) => {
                    e.emit(format!("mov eax,{rb}"));
                    e.emit(format!("{mn} {ra}"));
                }
                (true, true) => unreachable!("const*const folds in the optimizer"),
            }
            e.emit(format!("mov {dst},edx"));
        }
        Op::SltU(a, b) | Op::SltS(a, b) => {
            let set = if matches!(op, Op::SltU(..)) {
                "setb"
            } else {
                "setl"
            };
            let (ra, a_imm) = rm(e, a);
            let (rb, _) = rm(e, b);
            let dst = e.alloc(i);
            if a_imm {
                // cmp's first operand must be r/m: stage the immediate.
                e.emit(format!("mov {dst},{ra}"));
                e.emit(format!("cmp {dst},{rb}"));
            } else {
                e.emit(format!("cmp {ra},{rb}"));
            }
            e.emit(format!("{set} dl"));
            e.emit(format!("movzx {dst},dl"));
        }
        Op::Carry(a, b) => {
            // x86 has the real flag: add sets CF, setc materializes it.
            let (ra, a_imm) = rm(e, a);
            let (rb, _) = rm(e, b);
            let dst = e.alloc(i);
            if a_imm || dst != ra {
                e.emit(format!("mov {dst},{ra}"));
            }
            e.emit(format!("add {dst},{rb}"));
            e.emit("setc dl".into());
            e.emit(format!("movzx {dst},dl"));
        }
        Op::Borrow(a, b) => {
            // Same compare shape as unsigned set-less-than: CF after cmp
            // is the borrow.
            let (ra, a_imm) = rm(e, a);
            let (rb, _) = rm(e, b);
            let dst = e.alloc(i);
            if a_imm {
                e.emit(format!("mov {dst},{ra}"));
                e.emit(format!("cmp {dst},{rb}"));
            } else {
                e.emit(format!("cmp {ra},{rb}"));
            }
            e.emit("setb dl".into());
            e.emit(format!("movzx {dst},dl"));
        }
        Op::DivU(a, b) | Op::DivS(a, b) | Op::RemU(a, b) | Op::RemS(a, b) => {
            let (unsigned, rem) = match op {
                Op::DivU(..) => (true, false),
                Op::DivS(..) => (false, false),
                Op::RemU(..) => (true, true),
                _ => (false, true),
            };
            let (ra, _) = rm(e, a);
            let (rb, b_imm) = rm(e, b);
            let dst = e.alloc(i);
            e.emit(format!("mov eax,{ra}"));
            let divisor = if b_imm {
                // The divisor must be r/m: stage it in dst (read before
                // dst is overwritten with the result).
                e.emit(format!("mov {dst},{rb}"));
                dst.clone()
            } else {
                rb
            };
            if unsigned {
                e.emit("xor edx,edx".into());
                e.emit(format!("div {divisor}"));
            } else {
                e.emit("cdq".into());
                e.emit(format!("idiv {divisor}"));
            }
            e.emit(format!("mov {dst},{}", if rem { "edx" } else { "eax" }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::divgen::{gen_signed_div, gen_unsigned_div, gen_unsigned_divrem};

    #[test]
    fn all_targets_emit_divide_free_magic_code() {
        for &t in &Target::ALL {
            let prog = gen_unsigned_div(10, 32);
            let asm = emit_assembly(&prog, t, "udiv10");
            assert!(!asm.uses_divide(), "{t}: {asm}");
            assert!(asm.instruction_count() >= 3, "{t}: {asm}");
        }
    }

    #[test]
    fn mips_uses_multu_mfhi() {
        let asm = emit_assembly(&gen_unsigned_div(10, 32), Target::Mips, "f");
        let text = asm.to_string();
        assert!(text.contains("multu"), "{text}");
        assert!(text.contains("mfhi"), "{text}");
    }

    #[test]
    fn sparc_reads_y_register() {
        let asm = emit_assembly(&gen_unsigned_div(10, 32), Target::Sparc, "f");
        let text = asm.to_string();
        assert!(text.contains("umul"), "{text}");
        assert!(text.contains("rd %y"), "{text}");
        assert!(text.contains("sethi"), "{text}");
    }

    #[test]
    fn power_uses_mulhwu() {
        let asm = emit_assembly(&gen_unsigned_div(10, 32), Target::Power, "f");
        assert!(asm.to_string().contains("mulhwu"), "{asm}");
    }

    #[test]
    fn alpha_32bit_uses_full_product() {
        let asm = emit_assembly(&gen_unsigned_div(10, 32), Target::Alpha, "f");
        let text = asm.to_string();
        assert!(text.contains("mulq"), "{text}");
        assert!(text.contains("srl"), "{text}");
        assert!(!asm.uses_divide());
    }

    #[test]
    fn alpha_hw_division_calls_library() {
        let prog = crate::divgen::gen_unsigned_div_hw(32);
        let asm = emit_assembly(&prog, Target::Alpha, "f");
        assert!(asm.uses_divide(), "{asm}");
        assert!(asm.to_string().contains("__divqu"), "{asm}");
    }

    #[test]
    fn signed_division_emits_everywhere() {
        for &t in &Target::ALL {
            for d in [3i64, -7, 16, -100] {
                let asm = emit_assembly(&gen_signed_div(d, 32), t, "sdiv");
                assert!(!asm.uses_divide(), "{t} d={d}: {asm}");
            }
        }
    }

    #[test]
    fn divrem_emits_both_results() {
        let asm = emit_assembly(&gen_unsigned_divrem(10, 32), Target::Mips, "dr");
        let text = asm.to_string();
        // Two results moved into $2/$3 (or already there).
        assert!(text.contains("mfhi") || text.contains("mflo"), "{text}");
    }

    #[test]
    fn register_pools_survive_long_programs() {
        // The d = 7 long sequence plus remainder on every target.
        for &t in &Target::ALL {
            let prog = gen_unsigned_divrem(7, 32);
            let asm = emit_assembly(&prog, t, "dr7");
            assert!(asm.instruction_count() > 0, "{t}");
        }
    }
}
