//! Cross-layer trace-event integration tests: the cycle totals the
//! tracing layer reports must equal what the public costing API
//! returns, plan events must carry paper provenance, and tracing must
//! be structurally absent when no sink is installed.

use std::sync::Arc;

use magicdiv::plan::{DivPlan, FloorPlan, SdivPlan, UdivPlan};
use magicdiv_simcpu::{cycles_for_plan, cycles_for_program, table_1_1, trace_program};
use magicdiv_trace::{install, CaptureSink, Event, MetricsSink, Registry, Value};

fn u64_field(e: &Event, key: &str) -> u64 {
    e.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("event {} lacks u64 field {key}: {e}", e.name))
}

fn sample_plans() -> Vec<DivPlan> {
    vec![
        UdivPlan::new(7, 32).unwrap().into(),
        UdivPlan::new(10, 64).unwrap().into(),
        UdivPlan::new(1, 16).unwrap().into(),
        UdivPlan::new(32, 8).unwrap().into(),
        SdivPlan::new(-7, 32).unwrap().into(),
        SdivPlan::new(3, 64).unwrap().into(),
        FloorPlan::new(-5, 32).unwrap().into(),
    ]
}

/// The `simcpu.plan_cycles` event must report exactly the number
/// `cycles_for_plan` returns, for every plan × model combination.
#[test]
fn plan_cycles_event_matches_cycles_for_plan() {
    for plan in sample_plans() {
        for model in table_1_1() {
            let capture = Arc::new(CaptureSink::new());
            let cycles = {
                let _g = install(capture.clone());
                cycles_for_plan(&plan, &model)
            };
            let events = capture.named("simcpu.plan_cycles");
            assert_eq!(events.len(), 1, "one pricing event per call");
            assert_eq!(
                u64_field(&events[0], "cycles"),
                cycles,
                "trace total diverges from cycles_for_plan for {} on {}",
                plan.strategy_name(),
                model.name,
            );
            assert_eq!(
                events[0].get("strategy"),
                Some(&Value::from(plan.strategy_name())),
            );
        }
    }
}

/// The per-class cycle attribution from `trace_program` must sum to a
/// total equal to `cycles_for_program`'s answer.
#[test]
fn cycle_attribution_total_matches_cycles_for_program() {
    let pentium = table_1_1()
        .into_iter()
        .find(|m| m.name.contains("Pentium"))
        .expect("Pentium row");
    for plan in sample_plans() {
        let capture = Arc::new(CaptureSink::new());
        let prog = {
            // Reuse the pricing path to obtain the optimized program:
            // the plan_cycles event carries ops, but we want the
            // instruction-level attribution, so re-lower directly.
            use magicdiv_ir::{
                lower_exact_div, lower_floor_div, lower_sdiv, lower_udiv, optimize, Builder,
            };
            let mut b = Builder::new(plan.width(), 1);
            let n = b.arg(0);
            let q = match &plan {
                DivPlan::Unsigned(p) => lower_udiv(&mut b, n, p),
                DivPlan::Signed(p) => lower_sdiv(&mut b, n, p),
                DivPlan::Floor(p) => lower_floor_div(&mut b, n, p),
                DivPlan::Exact(p) => lower_exact_div(&mut b, n, p),
                other => panic!("unpriceable plan {other:?}"),
            };
            optimize(&b.finish([q]))
        };
        let timings = {
            let _g = install(capture.clone());
            trace_program(&prog, &pentium)
        };
        let events = capture.named("simcpu.cycles");
        assert_eq!(events.len(), 1);
        let total = u64_field(&events[0], "total");
        assert_eq!(total, cycles_for_program(&prog, &pentium));
        assert_eq!(u64_field(&events[0], "instructions"), timings.len() as u64);
    }
}

/// Every plan decision event names the paper artifact that justified it.
#[test]
fn plan_decisions_carry_paper_provenance() {
    let capture = Arc::new(CaptureSink::new());
    {
        // Plan construction under the sink is what gets traced.
        let _g = install(capture.clone());
        let _plans = sample_plans();
    }
    let decisions = capture.named("plan.decision");
    assert!(!decisions.is_empty(), "plans emitted no decisions");
    for d in &decisions {
        let paper = d.get("paper").expect("decision without paper field");
        let text = paper.to_string();
        assert!(
            text.contains("Fig") || text.contains('§') || text.contains("Thm"),
            "paper field does not cite an artifact: {text}"
        );
        assert!(
            d.get("strategy").is_some(),
            "decision without strategy: {d}"
        );
    }
}

/// Aggregating the event stream through a `MetricsSink` yields counters
/// for every event name and histograms for the cycle totals.
#[test]
fn metrics_sink_aggregates_pricing_events() {
    let registry = Arc::new(Registry::new());
    {
        let _g = install(Arc::new(MetricsSink::new(registry.clone())));
        for plan in sample_plans() {
            for model in table_1_1() {
                cycles_for_plan(&plan, &model);
            }
        }
    }
    let snap = registry.snapshot();
    let priced = (sample_plans().len() * table_1_1().len()) as u64;
    assert_eq!(snap.counters["events.simcpu.plan_cycles"], priced);
    let hist = &snap.histograms["simcpu.plan_cycles.cycles"];
    assert_eq!(hist.count, priced);
    // Identity plans optimize to zero instructions (0 cycles), so only
    // the upper end is guaranteed nonzero.
    assert!(hist.max >= 1, "non-trivial plans cost at least one cycle");
}

/// With no sink installed, tracing is off and pricing emits nothing —
/// the zero-cost guard the batch hot paths rely on.
#[test]
fn no_sink_means_no_tracing() {
    assert!(!magicdiv_trace::enabled());
    let capture = Arc::new(CaptureSink::new());
    for plan in sample_plans() {
        let pentium = table_1_1()
            .into_iter()
            .find(|m| m.name.contains("Pentium"))
            .expect("Pentium row");
        cycles_for_plan(&plan, &pentium);
    }
    assert!(capture.events().is_empty(), "uninstalled sink saw events");
}
