//! # magicdiv-simcpu — cycle-cost models of the paper's 1985–1993 CPUs
//!
//! The paper's evaluation ran on processors we cannot run on today
//! (MC68020 through Alpha 21064). Per the reproduction's substitution
//! policy (DESIGN.md §3), this crate prices instruction sequences against
//! **the paper's own published latencies**:
//!
//! * [`table_1_1`] — every row of Table 1.1 as a [`TimingModel`]
//!   (mul-high, divide, simple-op cycles; pipelining and software-divide
//!   footnotes; Table 11.2 clock rates);
//! * [`cycles_for_program`] — a single-issue in-order executor for
//!   [`magicdiv_ir`] programs with pipelined-multiplier overlap and
//!   HI/LO divide fusion;
//! * [`radix_conversion_timing`] — the Table 11.2 experiment: the
//!   Figure 11.1 kernel with and without division elimination.
//!
//! # Examples
//!
//! ```
//! use magicdiv_simcpu::{find_model, radix_conversion_timing};
//!
//! // The famous Alpha row: no divide instruction, so eliminating the
//! // (software) division wins by an order of magnitude.
//! let alpha = find_model("alpha").unwrap();
//! let t = radix_conversion_timing(&alpha);
//! assert!(t.speedup() > 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod kernel;
mod models;

pub use crate::exec::{
    cycles_for_loop, cycles_for_plan, cycles_for_program, predictions_for_plan, trace_program,
    try_cycles_for_plan, InstrTiming, PlanPrediction,
};
pub use crate::kernel::{
    bodies_for, radix_conversion_timing, RadixTiming, FULL_32BIT_DIGITS, LOOP_OVERHEAD_OPS,
};
pub use crate::models::{
    find_model, table_11_2_models, table_11_2_paper_numbers, table_1_1, DivSupport, TimingModel,
};
