//! Timing models transcribed from the paper's Table 1.1 (multiplication
//! and division times on different CPUs) and Table 11.2 (clock rates).
//!
//! We cannot run on 1985–1993 hardware; these models *are* the paper's own
//! published numbers, so pricing an instruction sequence against them
//! reproduces the evaluation's arithmetic exactly (see DESIGN.md §3 on
//! substitutions). Where Table 1.1 gives a range (e.g. 386: 9–38 cycles),
//! the model stores a representative midpoint, with the range kept in the
//! notes.

/// How integer division is provided on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DivSupport {
    /// A hardware divide instruction.
    Hardware,
    /// No direct hardware support; a software (library) routine — the
    /// paper's `s` footnote. The Alpha 21064 is the famous case.
    Software,
}

/// One row of Table 1.1: a processor implementation's timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Architecture / implementation name as printed in the paper.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u16,
    /// Word size in bits.
    pub bits: u32,
    /// Cycles for `HIGH(N-bit * N-bit)` — the upper product half.
    pub mul_high_cycles: u32,
    /// Cycles for a low-half multiply (usually the same unit).
    pub mul_low_cycles: u32,
    /// Cycles for an N-bit/N-bit divide.
    pub div_cycles: u32,
    /// Whether the divide is a hardware instruction or a software routine.
    pub div_support: DivSupport,
    /// `true` when the multiplier is pipelined (the paper's `p` footnote):
    /// independent instructions can execute during its latency.
    pub mul_pipelined: bool,
    /// Cycles for simple ALU operations (add/shift/bit-op/compare).
    pub simple_cycles: u32,
    /// Instructions issued per cycle (1 = scalar; the 1992-93 superscalars
    /// dual-issue).
    pub issue_width: u32,
    /// Clock rate in MHz where Table 11.2 reports one.
    pub mhz: Option<f64>,
    /// Qualifications from the paper's footnotes.
    pub notes: &'static str,
}

impl TimingModel {
    /// The Table 11.2 microseconds for `cycles` at this model's clock.
    ///
    /// Returns `None` when the paper gives no clock rate for the model.
    pub fn cycles_to_us(&self, cycles: u64) -> Option<f64> {
        self.mhz.map(|mhz| cycles as f64 / mhz)
    }

    /// Ratio of divide latency to high-multiply latency — the paper's §1
    /// motivation ("the cost of an integer division ... is several times
    /// that of an integer multiplication").
    pub fn div_to_mul_ratio(&self) -> f64 {
        self.div_cycles as f64 / self.mul_high_cycles as f64
    }
}

/// All Table 1.1 rows, in the paper's order.
pub fn table_1_1() -> Vec<TimingModel> {
    vec![
        TimingModel {
            name: "Motorola MC68020",
            year: 1985,
            bits: 32,
            mul_high_cycles: 42,
            mul_low_cycles: 28,
            div_cycles: 77,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(25.0),
            notes: "mul 41-44; div 76-78 unsigned, 88-90 signed",
        },
        TimingModel {
            name: "Motorola MC68040",
            year: 1991,
            bits: 32,
            mul_high_cycles: 20,
            mul_low_cycles: 16,
            div_cycles: 44,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(25.0),
            notes: "",
        },
        TimingModel {
            name: "Intel 386",
            year: 1985,
            bits: 32,
            mul_high_cycles: 24,
            mul_low_cycles: 24,
            div_cycles: 38,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 2,
            issue_width: 1,
            mhz: None,
            notes: "mul 9-38 (early-out)",
        },
        TimingModel {
            name: "Intel 486",
            year: 1989,
            bits: 32,
            mul_high_cycles: 27,
            mul_low_cycles: 27,
            div_cycles: 40,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: None,
            notes: "mul 13-42 (early-out)",
        },
        TimingModel {
            name: "Intel Pentium",
            year: 1993,
            bits: 32,
            mul_high_cycles: 10,
            mul_low_cycles: 10,
            div_cycles: 46,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 2,
            mhz: None,
            notes: "",
        },
        TimingModel {
            name: "SPARC Cypress CY7C601",
            year: 1989,
            bits: 32,
            mul_high_cycles: 40,
            mul_low_cycles: 40,
            div_cycles: 100,
            div_support: DivSupport::Software,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: None,
            notes: "div ~100s (software)",
        },
        TimingModel {
            name: "SPARC Viking",
            year: 1992,
            bits: 32,
            mul_high_cycles: 5,
            mul_low_cycles: 5,
            div_cycles: 19,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 2,
            mhz: Some(40.0),
            notes: "",
        },
        TimingModel {
            name: "HP PA 83",
            year: 1985,
            bits: 32,
            mul_high_cycles: 45,
            mul_low_cycles: 45,
            div_cycles: 70,
            div_support: DivSupport::Software,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: None,
            notes: "both software (s)",
        },
        TimingModel {
            name: "HP PA 7000",
            year: 1990,
            bits: 32,
            mul_high_cycles: 3,
            mul_low_cycles: 3,
            div_cycles: 70,
            div_support: DivSupport::Software,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(99.0),
            notes: "mul 3 in FP unit (excl. register moves); div ~70s",
        },
        TimingModel {
            name: "MIPS R3000",
            year: 1988,
            bits: 32,
            mul_high_cycles: 12,
            mul_low_cycles: 12,
            div_cycles: 35,
            div_support: DivSupport::Hardware,
            mul_pipelined: true,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(40.0),
            notes: "mul 12p, div 35p (HI/LO pipelined)",
        },
        TimingModel {
            name: "MIPS R4000",
            year: 1991,
            bits: 64,
            mul_high_cycles: 20,
            mul_low_cycles: 20,
            div_cycles: 139,
            div_support: DivSupport::Hardware,
            mul_pipelined: true,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(100.0),
            notes: "64-bit; mul 20p",
        },
        TimingModel {
            name: "POWER/RIOS I",
            year: 1989,
            bits: 32,
            mul_high_cycles: 5,
            mul_low_cycles: 5,
            div_cycles: 19,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: Some(50.0),
            notes: "signed only (no unsigned mul-high/div)",
        },
        TimingModel {
            name: "PowerPC/MPC601",
            year: 1993,
            bits: 32,
            mul_high_cycles: 7,
            mul_low_cycles: 7,
            div_cycles: 36,
            div_support: DivSupport::Hardware,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 2,
            mhz: None,
            notes: "mul 5-10",
        },
        TimingModel {
            name: "DEC Alpha 21064",
            year: 1992,
            bits: 64,
            mul_high_cycles: 23,
            mul_low_cycles: 23,
            div_cycles: 200,
            div_support: DivSupport::Software,
            mul_pipelined: true,
            simple_cycles: 1,
            issue_width: 2,
            mhz: Some(133.0),
            notes: "no integer divide instruction; ~200s library routine",
        },
        TimingModel {
            name: "Motorola MC88100",
            year: 1989,
            bits: 32,
            mul_high_cycles: 17,
            mul_low_cycles: 17,
            div_cycles: 38,
            div_support: DivSupport::Software,
            mul_pipelined: false,
            simple_cycles: 1,
            issue_width: 1,
            mhz: None,
            notes: "mul-high 17s (software; only mull in hardware)",
        },
        TimingModel {
            name: "Motorola MC88110",
            year: 1992,
            bits: 32,
            mul_high_cycles: 3,
            mul_low_cycles: 3,
            div_cycles: 18,
            div_support: DivSupport::Hardware,
            mul_pipelined: true,
            simple_cycles: 1,
            issue_width: 2,
            mhz: None,
            notes: "",
        },
    ]
}

/// The Table 11.2 subset (rows with measured radix-conversion timings),
/// in the paper's order.
pub fn table_11_2_models() -> Vec<TimingModel> {
    let wanted = [
        "Motorola MC68020",
        "Motorola MC68040",
        "SPARC Viking",
        "HP PA 7000",
        "MIPS R3000",
        "MIPS R4000",
        "POWER/RIOS I",
        "DEC Alpha 21064",
    ];
    let all = table_1_1();
    wanted
        .iter()
        .map(|w| {
            all.iter()
                .find(|m| m.name == *w)
                .copied()
                .expect("model present in table_1_1")
        })
        .collect()
}

/// The paper's measured Table 11.2 numbers, for side-by-side printing:
/// `(name, mhz, us_with_division, us_without_division, speedup)`.
pub fn table_11_2_paper_numbers() -> Vec<(&'static str, f64, f64, f64, f64)> {
    vec![
        ("Motorola MC68020", 25.0, 39.0, 33.0, 1.2),
        ("Motorola MC68040", 25.0, 19.0, 14.0, 1.4),
        ("SPARC Viking", 40.0, 6.4, 3.2, 2.0),
        ("HP PA 7000", 99.0, 9.7, 2.1, 4.6),
        ("MIPS R3000", 40.0, 12.0, 7.3, 1.7),
        ("MIPS R4000", 100.0, 8.3, 2.4, 3.4),
        ("POWER/RIOS I", 50.0, 5.0, 3.5, 1.4),
        ("DEC Alpha 21064", 133.0, 22.0, 1.8, 12.0),
    ]
}

/// Looks a model up by (case-insensitive substring) name.
pub fn find_model(name: &str) -> Option<TimingModel> {
    let needle = name.to_lowercase();
    table_1_1()
        .into_iter()
        .find(|m| m.name.to_lowercase().contains(&needle))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_like_the_paper() {
        assert_eq!(table_1_1().len(), 16);
    }

    #[test]
    fn discrepancy_grows_over_time() {
        // The paper's §1 claim: the mul/div gap has been growing. Compare
        // average div/mul ratio before and after 1990.
        let models = table_1_1();
        let (mut old, mut oldn, mut new, mut newn) = (0.0, 0, 0.0, 0);
        for m in &models {
            if m.year < 1990 {
                old += m.div_to_mul_ratio();
                oldn += 1;
            } else {
                new += m.div_to_mul_ratio();
                newn += 1;
            }
        }
        assert!(new / newn as f64 > old / oldn as f64);
    }

    #[test]
    fn alpha_has_no_divide() {
        let alpha = find_model("alpha").unwrap();
        assert_eq!(alpha.div_support, DivSupport::Software);
        assert!(alpha.div_cycles >= 100);
        assert!(alpha.mul_pipelined);
    }

    #[test]
    fn table_11_2_has_eight_rows_with_clocks() {
        let models = table_11_2_models();
        assert_eq!(models.len(), 8);
        assert!(models.iter().all(|m| m.mhz.is_some()));
        assert_eq!(models.len(), table_11_2_paper_numbers().len());
    }

    #[test]
    fn cycles_to_us() {
        let viking = find_model("viking").unwrap();
        assert_eq!(viking.cycles_to_us(400), Some(10.0)); // 400 cycles @ 40 MHz
        let pentium = find_model("pentium").unwrap();
        assert_eq!(pentium.cycles_to_us(100), None);
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find_model("VIKING").is_some());
        assert!(find_model("nonexistent cpu").is_none());
    }
}
