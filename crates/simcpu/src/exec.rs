//! The cycle-cost executor: prices an IR program against a
//! [`TimingModel`].
//!
//! The machine model is a single-issue in-order pipeline:
//!
//! * every instruction issues one cycle after the previous one at the
//!   earliest, and only once its operands are ready;
//! * a *pipelined* multiplier (the paper's `p` footnote) lets independent
//!   work proceed during the multiply's latency; non-pipelined multiply
//!   and divide block issue until they complete;
//! * constants and arguments are free (registers are preloaded outside
//!   the loop, as in all the paper's kernels);
//! * a `RemU`/`RemS` immediately reusing the operands of the previous
//!   `DivU`/`DivS` is free, modelling HI/LO-style divide units (MIPS) and
//!   combined `divul`-style instructions (MC68020) that produce both
//!   results with one divide.

use magicdiv::plan::DivPlan;
use magicdiv::{Fault, FaultKind, FaultLayer};
use magicdiv_ir::{
    lower_divisibility, lower_dword_div, lower_exact_div, lower_floor_div, lower_sdiv, lower_udiv,
    lower_urem, optimize, Builder, Op, OpClass, Program,
};

use crate::models::TimingModel;

/// The cycle cost of one operation class under a model, ignoring hazards.
fn latency(model: &TimingModel, op: &Op) -> u64 {
    match op.class() {
        OpClass::Nop => 0,
        OpClass::AddSub | OpClass::Shift | OpClass::BitOp | OpClass::Cmp => {
            model.simple_cycles as u64
        }
        OpClass::MulLow => model.mul_low_cycles as u64,
        OpClass::MulHigh => model.mul_high_cycles as u64,
        OpClass::Div => model.div_cycles as u64,
    }
}

/// Prices a straight-line program in cycles under `model`.
///
/// # Examples
///
/// ```
/// use magicdiv_codegen::{gen_unsigned_div, gen_unsigned_div_hw};
/// use magicdiv_simcpu::{cycles_for_program, find_model};
///
/// let pentium = find_model("pentium").unwrap();
/// let magic = cycles_for_program(&gen_unsigned_div(10, 32), &pentium);
/// let hw = cycles_for_program(&gen_unsigned_div_hw(32), &pentium);
/// assert!(magic < hw, "magic {magic} >= divide {hw}");
/// ```
pub fn cycles_for_program(prog: &Program, model: &TimingModel) -> u64 {
    trace_program(prog, model)
        .iter()
        .map(|t| t.complete)
        .max()
        .unwrap_or(0)
}

/// Prices a division *plan* in cycles under `model`: the plan is lowered
/// to its optimized IR sequence (exactly what `magicdiv-codegen` emits
/// for the same divisor) and priced with [`cycles_for_program`].
///
/// This is the estimator's entry point for "what would dividing by this
/// constant cost on machine X?" without the caller assembling a program.
///
/// # Panics
///
/// Panics when the plan's width exceeds 64 (the IR's limit — 128-bit
/// plans have no Table 3.1 encoding to price).
///
/// # Examples
///
/// ```
/// use magicdiv::plan::{DivPlan, UdivPlan};
/// use magicdiv_simcpu::{cycles_for_plan, find_model};
///
/// let pentium = find_model("pentium").unwrap();
/// let by_10 = DivPlan::from(UdivPlan::new(10, 32).unwrap());
/// let by_1024 = DivPlan::from(UdivPlan::new(1024, 32).unwrap());
/// assert!(cycles_for_plan(&by_1024, &pentium) <= cycles_for_plan(&by_10, &pentium));
/// ```
pub fn cycles_for_plan(plan: &DivPlan, model: &TimingModel) -> u64 {
    try_cycles_for_plan(plan, model).expect("plan width must be 8..=64 (IR limit)")
}

/// Fallible variant of [`cycles_for_plan`] for the differential harness:
/// an unpriceable plan is reported as a typed [`Fault`] (layer
/// [`FaultLayer::SimCpu`]) instead of a panic.
///
/// # Errors
///
/// [`FaultKind::UnsupportedWidth`] when the plan's width exceeds 64 (the
/// IR's limit — 128-bit plans have no Table 3.1 encoding to price), and
/// [`FaultKind::BadProgram`] for a plan kind this simulator does not
/// know.
///
/// # Examples
///
/// ```
/// use magicdiv::plan::{DivPlan, UdivPlan};
/// use magicdiv::{FaultKind, FaultLayer};
/// use magicdiv_simcpu::{find_model, try_cycles_for_plan};
///
/// let pentium = find_model("pentium").unwrap();
/// let wide = DivPlan::from(UdivPlan::new(10, 128).unwrap());
/// let fault = try_cycles_for_plan(&wide, &pentium).unwrap_err();
/// assert_eq!(fault.layer, FaultLayer::SimCpu);
/// assert_eq!(fault.kind, FaultKind::UnsupportedWidth { width: 128 });
/// ```
pub fn try_cycles_for_plan(plan: &DivPlan, model: &TimingModel) -> Result<u64, Fault> {
    let width = plan.width();
    let fault = |kind: FaultKind| Fault {
        layer: FaultLayer::SimCpu,
        kind,
        at: None,
    };
    if width > 64 {
        return Err(fault(FaultKind::UnsupportedWidth { width }));
    }
    // The Fig 8.1 plan is two-argument (hi, lo) and two-result (q, r);
    // the word plans take a single dividend. Each arm builds the same
    // optimized program `magicdiv-codegen` emits for that divisor.
    let prog = match plan {
        DivPlan::Dword(p) => {
            let mut b = Builder::new(width, 2);
            let (hi, lo) = (b.arg(0), b.arg(1));
            let (q, r) = lower_dword_div(&mut b, hi, lo, p);
            optimize(&b.finish([q, r]))
        }
        _ => {
            let mut b = Builder::new(width, 1);
            let n = b.arg(0);
            let q = match plan {
                DivPlan::Unsigned(p) => lower_udiv(&mut b, n, p),
                DivPlan::Signed(p) => lower_sdiv(&mut b, n, p),
                DivPlan::Floor(p) => lower_floor_div(&mut b, n, p),
                DivPlan::Exact(p) => lower_exact_div(&mut b, n, p),
                DivPlan::Urem(p) => lower_urem(&mut b, n, p),
                DivPlan::Divisibility(p) => lower_divisibility(&mut b, n, p),
                other => {
                    return Err(fault(FaultKind::BadProgram(format!(
                        "unknown plan kind {other:?}"
                    ))))
                }
            };
            optimize(&b.finish([q]))
        }
    };
    let cycles = cycles_for_program(&prog, model);
    magicdiv_trace::event!("simcpu.plan_cycles",
        "model" => model.name, "strategy" => plan.strategy_name(),
        "width" => width, "ops" => prog.op_counts().total_executed(),
        "cycles" => cycles, "paper" => "Table 1.1 latencies");
    Ok(cycles)
}

/// One Table 1.1 model's predicted cycle total for a plan — the unit the
/// calibration layer joins against host-measured timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanPrediction {
    /// Table 1.1 model name, exactly as [`TimingModel::name`] spells it.
    pub model: &'static str,
    /// Predicted cycle total from [`cycles_for_plan`].
    pub cycles: u64,
}

/// Prices `plan` under **every** Table 1.1 model in one call, in the
/// paper's row order. This is the joining surface for measured-vs-
/// predicted calibration: one lowering per model, every total labelled
/// with its model name.
///
/// # Errors
///
/// Same conditions as [`try_cycles_for_plan`] (width above the IR limit,
/// unknown plan kind); the first failing model aborts the table since
/// the failure is a property of the plan, not the model.
///
/// # Examples
///
/// ```
/// use magicdiv::plan::{DivPlan, UdivPlan};
/// use magicdiv_simcpu::{predictions_for_plan, table_1_1};
///
/// let plan = DivPlan::from(UdivPlan::new(10, 32).unwrap());
/// let preds = predictions_for_plan(&plan).unwrap();
/// assert_eq!(preds.len(), table_1_1().len());
/// assert!(preds.iter().all(|p| p.cycles > 0));
/// ```
pub fn predictions_for_plan(plan: &DivPlan) -> Result<Vec<PlanPrediction>, Fault> {
    crate::models::table_1_1()
        .iter()
        .map(|model| {
            try_cycles_for_plan(plan, model).map(|cycles| PlanPrediction {
                model: model.name,
                cycles,
            })
        })
        .collect()
}

/// One instruction's simulated schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstrTiming {
    /// Instruction index in the program.
    pub index: usize,
    /// Rendered operation (mnemonic + operands).
    pub text: String,
    /// Cycle the instruction issues.
    pub issue: u64,
    /// Cycle its result is available.
    pub complete: u64,
}

/// Simulates `prog` under `model`, returning the issue/complete schedule of
/// every executed instruction (constants and arguments are free and
/// omitted). [`cycles_for_program`] is the max `complete` of this trace.
///
/// # Examples
///
/// ```
/// use magicdiv_codegen::gen_unsigned_div;
/// use magicdiv_simcpu::{find_model, trace_program};
///
/// let trace = trace_program(&gen_unsigned_div(10, 32), &find_model("R3000").unwrap());
/// assert!(!trace.is_empty());
/// assert!(trace.windows(2).all(|w| w[0].issue <= w[1].issue)); // in order
/// ```
pub fn trace_program(prog: &Program, model: &TimingModel) -> Vec<InstrTiming> {
    let insts = prog.insts();
    let tracing = magicdiv_trace::enabled();
    let mut class_busy = [0u64; 8];
    let mut trace = Vec::new();
    let mut ready = vec![0u64; insts.len()];
    // Earliest cycle at which the next instruction may issue, plus how
    // many issue slots that cycle has already consumed (superscalar
    // machines issue `issue_width` instructions per cycle, in order).
    let mut next_issue = 0u64;
    let mut slots_used = 0u32;
    let issue_width = model.issue_width.max(1);
    let mut finish = 0u64;
    let mut last_div: Option<(usize, &Op)> = None;

    for (i, op) in insts.iter().enumerate() {
        if matches!(op.class(), OpClass::Nop) {
            ready[i] = 0;
            continue;
        }
        // HI/LO fusion: a remainder right after the matching divide is a
        // register read.
        let fused_rem = match (op, last_div) {
            (Op::RemU(a, b), Some((_, Op::DivU(x, y)))) if *a == *x && *b == *y => true,
            (Op::RemS(a, b), Some((_, Op::DivS(x, y)))) if *a == *x && *b == *y => true,
            _ => false,
        };
        let lat = if fused_rem {
            model.simple_cycles as u64
        } else {
            latency(model, op)
        };
        if tracing {
            class_busy[op.class().index()] += lat;
        }
        let operands_ready = op.operands().map(|r| ready[r.index()]).max().unwrap_or(0);
        // Earliest legal issue cycle: the in-order floor (bumped by one
        // when this cycle's issue slots are full) and the data dependences.
        let floor = if slots_used >= issue_width {
            next_issue + 1
        } else {
            next_issue
        };
        let issue = floor.max(operands_ready);
        ready[i] = issue + lat;
        finish = finish.max(ready[i]);
        if issue == next_issue {
            slots_used += 1;
        } else {
            next_issue = issue;
            slots_used = 1;
        }
        // Pipelining: only the multiplier is pipelined (when flagged);
        // everything else blocks issue until done. Simple ops complete in
        // `simple_cycles` anyway.
        let blocking = match op.class() {
            OpClass::MulLow | OpClass::MulHigh => !model.mul_pipelined,
            OpClass::Div => false, // divides park in HI/LO on pipelined parts too; treat as blocking only through data deps
            _ => false,
        };
        if blocking && ready[i] > next_issue {
            // The unit stalls issue until completion; no slots consumed
            // at the completion cycle itself.
            next_issue = ready[i];
            slots_used = 0;
        }
        if matches!(op, Op::DivU(..) | Op::DivS(..)) {
            last_div = Some((i, op));
        }
        trace.push(InstrTiming {
            index: i,
            text: format!("{op:?}"),
            issue,
            complete: ready[i],
        });
    }
    let _ = finish;
    if tracing {
        use magicdiv_ir::OpClass;
        magicdiv_trace::event!("simcpu.cycles",
            "model" => model.name,
            "total" => trace.iter().map(|t| t.complete).max().unwrap_or(0),
            "instructions" => trace.len(),
            "add_sub_busy" => class_busy[OpClass::AddSub.index()],
            "shift_busy" => class_busy[OpClass::Shift.index()],
            "bit_op_busy" => class_busy[OpClass::BitOp.index()],
            "cmp_busy" => class_busy[OpClass::Cmp.index()],
            "mul_low_busy" => class_busy[OpClass::MulLow.index()],
            "mul_high_busy" => class_busy[OpClass::MulHigh.index()],
            "div_busy" => class_busy[OpClass::Div.index()],
            "paper" => "Table 1.1 latencies, single-issue in-order");
    }
    trace
}

/// Prices a loop kernel: `iterations` executions of `body` plus
/// `overhead_per_iter` simple operations (store, pointer bump, branch) per
/// iteration.
///
/// # Examples
///
/// ```
/// use magicdiv_codegen::{radix_body, RadixStyle};
/// use magicdiv_simcpu::{cycles_for_loop, find_model};
///
/// let viking = find_model("viking").unwrap();
/// let body = radix_body(32, RadixStyle::Magic);
/// let ten_digits = cycles_for_loop(&body, &viking, 10, 3);
/// assert!(ten_digits > 0);
/// ```
pub fn cycles_for_loop(
    body: &Program,
    model: &TimingModel,
    iterations: u64,
    overhead_per_iter: u64,
) -> u64 {
    let per_iter = cycles_for_program(body, model) + overhead_per_iter * model.simple_cycles as u64;
    per_iter * iterations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::find_model;
    use magicdiv_codegen::{gen_unsigned_div, gen_unsigned_div_hw, gen_unsigned_divrem_hw};
    use magicdiv_ir::Builder;

    #[test]
    fn magic_beats_divide_on_every_table_row() {
        // The headline claim: the multiply sequence beats the divide on
        // every Table 1.1 machine for d = 10.
        let magic = gen_unsigned_div(10, 32);
        let hw = gen_unsigned_div_hw(32);
        for model in crate::models::table_1_1() {
            let mc = cycles_for_program(&magic, &model);
            let dc = cycles_for_program(&hw, &model);
            assert!(mc < dc, "{}: magic {mc} >= divide {dc}", model.name);
        }
    }

    #[test]
    fn rem_after_div_is_fused() {
        let model = find_model("R3000").unwrap();
        let divrem = gen_unsigned_divrem_hw(32);
        let single = gen_unsigned_div_hw(32);
        let both = cycles_for_program(&divrem, &model);
        let one = cycles_for_program(&single, &model);
        assert!(
            both <= one + model.simple_cycles as u64 + 1,
            "both={both} one={one}"
        );
    }

    #[test]
    fn pipelined_multiplier_overlaps_independent_work() {
        // mul followed by 5 independent adds: pipelined machines hide the
        // adds under the multiply.
        let build = || {
            let mut b = Builder::new(32, 2);
            let m = b.push(magicdiv_ir::Op::MulUH(b.arg(0), b.arg(1)));
            let mut acc = b.arg(1);
            for _ in 0..5 {
                acc = b.push(magicdiv_ir::Op::Add(acc, acc));
            }
            let merged = b.push(magicdiv_ir::Op::Add(m, acc));
            b.finish([merged])
        };
        let prog = build();
        let r3000 = find_model("R3000").unwrap(); // pipelined, mul 12
        let m68020 = find_model("68020").unwrap(); // not pipelined, mul 42
        let piped = cycles_for_program(&prog, &r3000);
        let blocked = cycles_for_program(&prog, &m68020);
        // Pipelined: ~ mul latency + 1 (adds hidden); blocked: mul + adds.
        assert!(piped <= 12 + 3, "piped={piped}");
        assert!(blocked >= 42 + 5, "blocked={blocked}");
    }

    #[test]
    fn plan_cycles_match_generated_code() {
        // Pricing a plan must agree with pricing the code generated for
        // the same divisor — both go through the shared lowering.
        let model = find_model("pentium").unwrap();
        for d in [1u64, 2, 3, 7, 10, 641, 60000] {
            let plan = magicdiv::plan::DivPlan::from(
                magicdiv::plan::UdivPlan::new(d as u128, 32).unwrap(),
            );
            assert_eq!(
                cycles_for_plan(&plan, &model),
                cycles_for_program(&gen_unsigned_div(d, 32), &model),
                "d={d}"
            );
        }
        for d in [-10i64, -3, 3, 7, 16] {
            let plan = magicdiv::plan::DivPlan::from(
                magicdiv::plan::SdivPlan::new(d as i128, 32).unwrap(),
            );
            assert_eq!(
                cycles_for_plan(&plan, &model),
                cycles_for_program(&magicdiv_codegen::gen_signed_div(d, 32), &model),
                "d={d}"
            );
        }
    }

    #[test]
    fn dword_plan_cycles_match_generated_code() {
        // Fig 8.1 pricing goes through the same lowering codegen uses, on
        // every Table 1.1 timing model.
        for model in crate::models::table_1_1() {
            for d in [1u64, 3, 10, 641, 0xffff_ffff] {
                let plan = magicdiv::plan::DivPlan::from(
                    magicdiv::plan::DwordPlan::new(d as u128, 32).unwrap(),
                );
                assert_eq!(
                    cycles_for_plan(&plan, &model),
                    cycles_for_program(&magicdiv_codegen::gen_dword_div(d, 32), &model),
                    "{} d={d}",
                    model.name
                );
            }
        }
    }

    #[test]
    fn urem_and_divisibility_price_on_every_table_row() {
        // Both new shapes must be priceable on every Table 1.1 model,
        // agreeing with the code generated for the same plan, and both
        // must beat the hardware remainder/divide path.
        for model in crate::models::table_1_1() {
            for d in [3u64, 10, 641, 60000] {
                let direct = magicdiv::plan::UremPlan::new_direct(d as u128, 32).unwrap();
                let mulback = magicdiv::plan::UremPlan::new(d as u128, 32).unwrap();
                for p in [&direct, &mulback] {
                    assert_eq!(
                        cycles_for_plan(&magicdiv::plan::DivPlan::Urem(*p), &model),
                        cycles_for_program(&magicdiv_codegen::gen_urem_plan(p), &model),
                        "{} d={d}",
                        model.name
                    );
                }
                let divtest = magicdiv::plan::DivisibilityPlan::new(d as u128, 32).unwrap();
                let dc = cycles_for_plan(&magicdiv::plan::DivPlan::Divisibility(divtest), &model);
                assert_eq!(
                    dc,
                    cycles_for_program(&magicdiv_codegen::gen_divisibility_plan(&divtest), &model),
                    "{} divtest d={d}",
                    model.name
                );
                let hw = cycles_for_program(&gen_unsigned_div_hw(32), &model);
                assert!(dc < hw, "{}: divtest {dc} >= divide {hw}", model.name);
            }
        }
    }

    #[test]
    fn dword_costs_more_than_single_word_but_less_than_divide() {
        // Fig 8.1 is a longer straight-line sequence than Fig 4.2, yet
        // still beats the hardware doubleword divide where one exists
        // (price the divide as two chained word divides, the usual
        // library fallback).
        let model = find_model("pentium").unwrap();
        let dword = magicdiv::plan::DivPlan::from(magicdiv::plan::DwordPlan::new(10, 32).unwrap());
        let word = magicdiv::plan::DivPlan::from(magicdiv::plan::UdivPlan::new(10, 32).unwrap());
        let dc = cycles_for_plan(&dword, &model);
        let wc = cycles_for_plan(&word, &model);
        let hw = 2 * cycles_for_program(&gen_unsigned_div_hw(32), &model);
        assert!(wc < dc, "word {wc} >= dword {dc}");
        assert!(dc < hw, "dword {dc} >= 2x divide {hw}");
    }

    #[test]
    fn constants_are_free() {
        let mut b = Builder::new(32, 1);
        let c = b.constant(1234);
        let s = b.push(magicdiv_ir::Op::Add(b.arg(0), c));
        let prog = b.finish([s]);
        let model = find_model("viking").unwrap();
        assert_eq!(cycles_for_program(&prog, &model), 1);
    }

    #[test]
    fn loop_scales_linearly() {
        let model = find_model("viking").unwrap();
        let body = gen_unsigned_div(10, 32);
        let one = cycles_for_loop(&body, &model, 1, 3);
        let ten = cycles_for_loop(&body, &model, 10, 3);
        assert_eq!(ten, one * 10);
    }
}
