//! Whole-kernel timing: the Table 11.2 radix-conversion experiment.
//!
//! The paper converts "a full 32-bit number" (ten decimal digits) with and
//! without division elimination and reports microseconds per call and the
//! speedup ratio on eight machines. This module re-runs that experiment on
//! the cycle-cost simulator: the loop bodies come from
//! [`magicdiv_codegen::radix_body`], per-iteration loop overhead (store
//! byte, pointer bump, branch) is priced as simple operations, and cycles
//! are converted at each model's clock rate.

use magicdiv_codegen::{radix_body, RadixStyle};
use magicdiv_ir::Program;

use crate::exec::cycles_for_loop;
use crate::models::{DivSupport, TimingModel};

/// Digits produced when converting a full 32-bit number (the paper's
/// workload): `u32::MAX` has ten decimal digits.
pub const FULL_32BIT_DIGITS: u64 = 10;

/// Store byte + pointer decrement + loop branch, per iteration.
pub const LOOP_OVERHEAD_OPS: u64 = 3;

/// One Table 11.2 row as reproduced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadixTiming {
    /// Cycles per call with the division performed.
    pub cycles_with_division: u64,
    /// Cycles per call with the division eliminated.
    pub cycles_without_division: u64,
    /// Microseconds per call with division (when the clock is known).
    pub us_with_division: Option<f64>,
    /// Microseconds per call with division eliminated.
    pub us_without_division: Option<f64>,
}

impl RadixTiming {
    /// The speedup ratio (with / without), the paper's last column.
    pub fn speedup(&self) -> f64 {
        self.cycles_with_division as f64 / self.cycles_without_division as f64
    }
}

/// Picks the loop bodies a compiler would produce for `model` and prices
/// the ten-digit conversion.
///
/// On the Alpha (64-bit, 23-cycle `mulq`, no divide instruction) the
/// "without division" body is the shift/add expansion of Table 11.1; on
/// 32-bit machines it is the `MULUH`-based magic sequence. The "with
/// division" body uses the hardware divide (or, on software-divide
/// machines, the same `div` op priced at the library-routine cost — the
/// paper's Table 11.2 footnote about the Alpha's "artificial" 12x).
///
/// # Examples
///
/// ```
/// use magicdiv_simcpu::{find_model, radix_conversion_timing};
///
/// let t = radix_conversion_timing(&find_model("viking").unwrap());
/// assert!(t.speedup() > 1.0);
/// ```
pub fn radix_conversion_timing(model: &TimingModel) -> RadixTiming {
    let (magic_body, hw_body) = bodies_for(model);
    let with_div = cycles_for_loop(&hw_body, model, FULL_32BIT_DIGITS, LOOP_OVERHEAD_OPS);
    let without_div = cycles_for_loop(&magic_body, model, FULL_32BIT_DIGITS, LOOP_OVERHEAD_OPS);
    RadixTiming {
        cycles_with_division: with_div,
        cycles_without_division: without_div,
        us_with_division: model.cycles_to_us(with_div),
        us_without_division: model.cycles_to_us(without_div),
    }
}

/// The (magic, hardware) loop bodies appropriate for a model.
pub fn bodies_for(model: &TimingModel) -> (Program, Program) {
    let magic = if model.div_support == DivSupport::Software
        && model.bits == 64
        && model.mul_pipelined
        && magicdiv_codegen::expansion_profitable(((1u64 << 34) + 1) / 5, model.mul_high_cycles)
    {
        // Alpha-style: even the multiply is expanded.
        radix_body(64, RadixStyle::AlphaShiftAdd)
    } else {
        radix_body(32, RadixStyle::Magic)
    };
    let hw = radix_body(32, RadixStyle::Hardware);
    (magic, hw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{find_model, table_11_2_models, table_11_2_paper_numbers};

    #[test]
    fn every_table_11_2_machine_speeds_up() {
        for model in table_11_2_models() {
            let t = radix_conversion_timing(&model);
            assert!(
                t.speedup() > 1.05,
                "{}: speedup {}",
                model.name,
                t.speedup()
            );
        }
    }

    #[test]
    fn alpha_shows_the_largest_speedup() {
        // Table 11.2: the Alpha's ratio (12x) dwarfs the others because
        // its baseline is a software divide.
        let timings: Vec<(String, f64)> = table_11_2_models()
            .iter()
            .map(|m| (m.name.to_string(), radix_conversion_timing(m).speedup()))
            .collect();
        let alpha = timings.iter().find(|(n, _)| n.contains("Alpha")).unwrap().1;
        for (name, s) in &timings {
            if !name.contains("Alpha") {
                assert!(alpha > *s, "Alpha {alpha} vs {name} {s}");
            }
        }
        assert!(alpha > 4.0, "Alpha speedup {alpha}");
    }

    #[test]
    fn speedup_ordering_roughly_matches_paper() {
        // Spearman-style sanity: machines the paper ranks clearly faster
        // (HP PA 7000 4.6x, R4000 3.4x) must beat machines it ranks slower
        // (MC68020 1.2x, POWER 1.4x) in our simulation too.
        let get = |name: &str| radix_conversion_timing(&find_model(name).unwrap()).speedup();
        let pa = get("PA 7000");
        let r4000 = get("R4000");
        let m68020 = get("68020");
        let power = get("RIOS");
        assert!(pa > m68020, "pa {pa} 68020 {m68020}");
        assert!(pa > power, "pa {pa} power {power}");
        assert!(r4000 > m68020, "r4000 {r4000} 68020 {m68020}");
        assert!(r4000 > power, "r4000 {r4000} power {power}");
    }

    #[test]
    fn microseconds_within_striking_distance_of_paper() {
        // We don't claim cycle-exact 1994 measurements, but the simulated
        // µs should land within ~3x of the paper's on every row (same
        // order of magnitude, same story).
        for (name, _mhz, us_with, us_without, _speedup) in table_11_2_paper_numbers() {
            let model = find_model(name).unwrap();
            let t = radix_conversion_timing(&model);
            let sim_with = t.us_with_division.unwrap();
            let sim_without = t.us_without_division.unwrap();
            assert!(
                sim_with / us_with < 3.0 && us_with / sim_with < 3.0,
                "{name}: with-division {sim_with:.1} vs paper {us_with:.1}"
            );
            assert!(
                sim_without / us_without < 3.5 && us_without / sim_without < 3.5,
                "{name}: without-division {sim_without:.1} vs paper {us_without:.1}"
            );
        }
    }

    #[test]
    fn alpha_picks_shift_add_body() {
        let alpha = find_model("alpha").unwrap();
        let (magic, _) = bodies_for(&alpha);
        assert_eq!(magic.width(), 64);
        assert!(!magic.op_counts().uses_multiply());
        let viking = find_model("viking").unwrap();
        let (magic, _) = bodies_for(&viking);
        assert_eq!(magic.op_counts().mul_high, 1);
    }
}
