//! Portable doubleword integer arithmetic.
//!
//! Granlund & Montgomery's algorithms (PLDI 1994) need *doubleword*
//! arithmetic in two places:
//!
//! * the compile-time multiplier selection `CHOOSE_MULTIPLIER` (Fig 6.2)
//!   computes `⌊2^(N+l)/d⌋`, whose numerator needs up to `2N` bits, and the
//!   multiplier itself can be `N + 1` bits wide;
//! * the §8 algorithm divides a `udword` (a `2N`-bit value) by a `uword`.
//!
//! For `N = 32` one can lean on `u64`, and for `N = 64` on `u128`, but for
//! `N = 128` no wider native type exists. This crate provides [`DWord<T>`],
//! a `(hi, lo)` pair over any machine word implementing [`Limb`], with
//! add/sub/shift/compare, widening multiplication, and division — enough to
//! run every paper algorithm at any width, and to cross-check the
//! `u128`-based fast paths used by `magicdiv` proper.
//!
//! # Examples
//!
//! ```
//! use magicdiv_dword::DWord;
//!
//! // 2^40 / 10 with 32-bit limbs: numerator does not fit in one limb.
//! let n = DWord::<u32>::from_parts(1 << 8, 0); // 2^40
//! let (q, r) = n.div_rem_limb(10).unwrap();
//! assert_eq!(q.to_u128(), (1u128 << 40) / 10);
//! assert_eq!(r, ((1u128 << 40) % 10) as u32);
//! ```

#![no_std]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dword;
mod limb;

pub use crate::dword::DWord;
pub use crate::limb::Limb;
