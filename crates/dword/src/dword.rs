//! The [`DWord`] doubleword type.

use core::cmp::Ordering;
use core::fmt;

use crate::Limb;

/// An unsigned `2N`-bit integer built from two `N`-bit limbs.
///
/// This is the paper's `udword`: `value = 2^N * hi + lo`. It supports the
/// arithmetic `CHOOSE_MULTIPLIER` (Fig 6.2) and the §8 doubleword dividend
/// algorithm need, at any limb width including `u128` (where no wider
/// native type exists).
///
/// All arithmetic is explicit (`wrapping_*`, `overflowing_*`, `checked_*`)
/// — there are no panicking operator overloads, because the call sites in
/// the paper's algorithms care exactly about carries and wraps.
///
/// # Examples
///
/// ```
/// use magicdiv_dword::DWord;
///
/// let x = DWord::<u64>::from_lo(u64::MAX);
/// let y = x.wrapping_add(DWord::from_lo(1));
/// assert_eq!(y.parts(), (1, 0)); // carried into the high limb
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DWord<T> {
    hi: T,
    lo: T,
}

impl<T: Limb> DWord<T> {
    /// The doubleword zero.
    #[inline]
    pub fn zero() -> Self {
        DWord {
            hi: T::ZERO,
            lo: T::ZERO,
        }
    }

    /// Builds a doubleword from its high and low limbs.
    #[inline]
    pub fn from_parts(hi: T, lo: T) -> Self {
        DWord { hi, lo }
    }

    /// Zero-extends a single limb.
    #[inline]
    pub fn from_lo(lo: T) -> Self {
        DWord { hi: T::ZERO, lo }
    }

    /// `2^N * hi`, i.e. a value with a zero low limb.
    #[inline]
    pub fn from_hi(hi: T) -> Self {
        DWord { hi, lo: T::ZERO }
    }

    /// The power `2^k` for `0 <= k < 2N`.
    ///
    /// # Panics
    ///
    /// Panics when `k >= 2 * T::BITS`.
    #[inline]
    pub fn pow2(k: u32) -> Self {
        assert!(k < 2 * T::BITS, "pow2 exponent out of range");
        if k < T::BITS {
            DWord::from_lo(T::ONE.shl_full(k))
        } else {
            DWord::from_hi(T::ONE.shl_full(k - T::BITS))
        }
    }

    /// The high limb, the paper's `HIGH(n)`.
    #[inline]
    pub fn hi(self) -> T {
        self.hi
    }

    /// The low limb, the paper's `LOW(n)`.
    #[inline]
    pub fn lo(self) -> T {
        self.lo
    }

    /// Both limbs as `(hi, lo)`.
    #[inline]
    pub fn parts(self) -> (T, T) {
        (self.hi, self.lo)
    }

    /// `true` when the value is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.hi == T::ZERO && self.lo == T::ZERO
    }

    /// `true` when the value fits in a single limb.
    #[inline]
    pub fn fits_limb(self) -> bool {
        self.hi == T::ZERO
    }

    /// The sign bit under the paper's `sdword` (signed doubleword) reading.
    #[inline]
    pub fn is_negative_as_sdword(self) -> bool {
        self.hi.msb()
    }

    /// Addition modulo `2^(2N)`.
    #[inline]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        self.overflowing_add(rhs).0
    }

    /// Addition with carry-out of the doubleword.
    #[inline]
    pub fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        let (lo, c0) = self.lo.overflowing_add(rhs.lo);
        let (hi1, c1) = self.hi.overflowing_add(rhs.hi);
        let (hi, c2) = hi1.overflowing_add(if c0 { T::ONE } else { T::ZERO });
        (DWord { hi, lo }, c1 | c2)
    }

    /// Addition returning `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: Self) -> Option<Self> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction modulo `2^(2N)`.
    #[inline]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        self.overflowing_sub(rhs).0
    }

    /// Subtraction with borrow-out.
    #[inline]
    pub fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
        let (lo, b0) = self.lo.overflowing_sub(rhs.lo);
        let (hi1, b1) = self.hi.overflowing_sub(rhs.hi);
        let (hi, b2) = hi1.overflowing_sub(if b0 { T::ONE } else { T::ZERO });
        (DWord { hi, lo }, b1 | b2)
    }

    /// Subtraction returning `None` on underflow.
    #[inline]
    pub fn checked_sub(self, rhs: Self) -> Option<Self> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Two's-complement negation modulo `2^(2N)`.
    #[inline]
    pub fn wrapping_neg(self) -> Self {
        DWord::from_lo(T::ZERO).wrapping_sub(self)
    }

    /// Adds a single limb, wrapping modulo `2^(2N)`.
    #[inline]
    pub fn wrapping_add_limb(self, rhs: T) -> Self {
        self.wrapping_add(DWord::from_lo(rhs))
    }

    /// Subtracts a single limb, wrapping modulo `2^(2N)`.
    #[inline]
    pub fn wrapping_sub_limb(self, rhs: T) -> Self {
        self.wrapping_sub(DWord::from_lo(rhs))
    }

    /// Logical left shift; returns zero when `n >= 2N`.
    #[inline]
    pub fn shl_full(self, n: u32) -> Self {
        let bits = T::BITS;
        if n == 0 {
            self
        } else if n < bits {
            DWord {
                hi: self.hi.shl_full(n) | self.lo.shr_full(bits - n),
                lo: self.lo.shl_full(n),
            }
        } else if n < 2 * bits {
            DWord {
                hi: self.lo.shl_full(n - bits),
                lo: T::ZERO,
            }
        } else {
            DWord::from_lo(T::ZERO)
        }
    }

    /// Logical right shift; returns zero when `n >= 2N`.
    #[inline]
    pub fn shr_full(self, n: u32) -> Self {
        let bits = T::BITS;
        if n == 0 {
            self
        } else if n < bits {
            DWord {
                hi: self.hi.shr_full(n),
                lo: self.lo.shr_full(n) | self.hi.shl_full(bits - n),
            }
        } else if n < 2 * bits {
            DWord {
                hi: T::ZERO,
                lo: self.hi.shr_full(n - bits),
            }
        } else {
            DWord::from_lo(T::ZERO)
        }
    }

    /// Arithmetic right shift under the `sdword` reading; saturates to the
    /// sign word when `n >= 2N`.
    #[inline]
    pub fn sar_full(self, n: u32) -> Self {
        let fill = if self.is_negative_as_sdword() {
            T::MAX
        } else {
            T::ZERO
        };
        let bits = T::BITS;
        if n == 0 {
            self
        } else if n < bits {
            DWord {
                hi: self.hi.shr_full(n) | fill.shl_full(bits - n),
                lo: self.lo.shr_full(n) | self.hi.shl_full(bits - n),
            }
        } else if n < 2 * bits {
            DWord {
                hi: fill,
                lo: self.hi.shr_full(n - bits) | fill.shl_full(2 * bits - n),
            }
        } else {
            DWord { hi: fill, lo: fill }
        }
    }

    /// Number of leading zero bits out of `2N`.
    #[inline]
    pub fn leading_zeros(self) -> u32 {
        if self.hi == T::ZERO {
            T::BITS + self.lo.leading_zeros()
        } else {
            self.hi.leading_zeros()
        }
    }

    /// Full `N x N -> 2N` product of two limbs (the paper's
    /// `2^N * MULUH + MULL` identity).
    #[inline]
    pub fn widening_mul(a: T, b: T) -> Self {
        let (hi, lo) = a.widening_mul(b);
        DWord { hi, lo }
    }

    /// Multiplies by a single limb, returning the low doubleword and the
    /// overflow limb (a `3N`-bit result split as `carry * 2^(2N) + dword`).
    pub fn mul_limb(self, m: T) -> (Self, T) {
        let (lo_hi, lo_lo) = self.lo.widening_mul(m);
        let (hi_hi, hi_lo) = self.hi.widening_mul(m);
        let (mid, c) = lo_hi.overflowing_add(hi_lo);
        let carry = hi_hi.wrapping_add(if c { T::ONE } else { T::ZERO });
        (DWord { hi: mid, lo: lo_lo }, carry)
    }

    /// Divides by a single limb, returning the doubleword quotient and the
    /// limb remainder, or `None` when `d == 0`.
    ///
    /// This is a restoring binary long division — `2N` iterations — used
    /// only at "compile time" (multiplier selection), never on the divide
    /// fast path, so simplicity beats speed.
    pub fn div_rem_limb(self, d: T) -> Option<(Self, T)> {
        if d == T::ZERO {
            return None;
        }
        // Fast path: dividend fits in one limb.
        if self.hi == T::ZERO {
            let q = self.lo.checked_div(d)?;
            let r = self.lo.checked_rem(d)?;
            return Some((DWord::from_lo(q), r));
        }
        let mut rem = T::ZERO;
        let mut quot = DWord::from_lo(T::ZERO);
        let total = 2 * T::BITS;
        for i in (0..total).rev() {
            // rem = rem*2 + bit_i(self); rem never reaches 2d <= 2^(N+1),
            // but the shift could carry out of the limb when d has its top
            // bit set, so handle the carry explicitly.
            let carry = rem.msb();
            rem = rem.shl_full(1);
            let bit = if i >= T::BITS {
                self.hi.bit(i - T::BITS)
            } else {
                self.lo.bit(i)
            };
            if bit {
                rem = rem | T::ONE;
            }
            if carry || rem >= d {
                rem = rem.wrapping_sub(d);
                quot = quot.wrapping_add(DWord::pow2(i));
            }
        }
        Some((quot, rem))
    }

    /// Full doubleword division, returning `(quotient, remainder)`, or
    /// `None` when the divisor is zero.
    pub fn div_rem(self, d: Self) -> Option<(Self, Self)> {
        if d.is_zero() {
            return None;
        }
        if d.fits_limb() {
            let (q, r) = self.div_rem_limb(d.lo())?;
            return Some((q, DWord::from_lo(r)));
        }
        // Binary long division over 2N bits; divisor occupies > N bits so
        // the quotient fits in one limb, but we keep it general.
        let mut rem = DWord::from_lo(T::ZERO);
        let mut quot = DWord::from_lo(T::ZERO);
        let total = 2 * T::BITS;
        for i in (0..total).rev() {
            rem = rem.shl_full(1);
            let bit = if i >= T::BITS {
                self.hi.bit(i - T::BITS)
            } else {
                self.lo.bit(i)
            };
            if bit {
                rem = DWord {
                    hi: rem.hi,
                    lo: rem.lo | T::ONE,
                };
            }
            if rem >= d {
                rem = rem.wrapping_sub(d);
                quot = quot.wrapping_add(DWord::pow2(i));
            }
        }
        Some((quot, rem))
    }

    /// Widens into `u128`.
    ///
    /// # Panics
    ///
    /// Panics when the limb is wider than 64 bits (the value may not fit).
    #[inline]
    pub fn to_u128(self) -> u128 {
        assert!(
            T::BITS <= 64,
            "DWord::to_u128 requires limbs of at most 64 bits"
        );
        (self.hi.to_u128() << T::BITS) | self.lo.to_u128()
    }

    /// Truncates a `u128` into a doubleword (keeps the low `2N` bits).
    #[inline]
    pub fn from_u128_truncate(x: u128) -> Self {
        if T::BITS >= 128 {
            return DWord::from_lo(T::from_u128_truncate(x));
        }
        DWord {
            hi: T::from_u128_truncate(x >> T::BITS),
            lo: T::from_u128_truncate(x),
        }
    }
}

impl<T: Limb> PartialOrd for DWord<T> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Limb> Ord for DWord<T> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.hi.cmp(&other.hi).then(self.lo.cmp(&other.lo))
    }
}

impl<T: Limb> From<T> for DWord<T> {
    #[inline]
    fn from(lo: T) -> Self {
        DWord::from_lo(lo)
    }
}

impl<T: Limb> fmt::Debug for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DWord(hi={:#x}, lo={:#x})", self.hi, self.lo)
    }
}

impl<T: Limb> fmt::Display for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal output via repeated division by a power of ten; only used
        // in diagnostics, so the simple quadratic approach is fine.
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut digits = [0u8; 80]; // 2*128 bits < 78 decimal digits
        let mut n = *self;
        let ten = T::from_u8(10);
        let mut len = 0;
        while !n.is_zero() {
            let (q, r) = n.div_rem_limb(ten).expect("ten is nonzero");
            digits[len] = b'0' + r.to_u128() as u8;
            len += 1;
            n = q;
        }
        for i in (0..len).rev() {
            write!(f, "{}", (digits[i] - b'0'))?;
        }
        Ok(())
    }
}

impl<T: Limb> fmt::UpperHex for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == T::ZERO {
            write!(f, "{:X}", self.lo)
        } else {
            write!(f, "{:X}", self.hi)?;
            let nibbles = (T::BITS / 4) as usize;
            let mut buf = [0u8; 32];
            let mut lo = self.lo;
            for slot in buf.iter_mut().take(nibbles) {
                let nib = (lo.to_u128() & 0xf) as u8;
                *slot = if nib < 10 {
                    b'0' + nib
                } else {
                    b'A' + nib - 10
                };
                lo = lo.shr_full(4);
            }
            for i in (0..nibbles).rev() {
                write!(f, "{}", buf[i] as char)?;
            }
            Ok(())
        }
    }
}

impl<T: Limb> fmt::Binary for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let total = 2 * T::BITS;
        let top = total - self.leading_zeros();
        for i in (0..top).rev() {
            let bit = if i >= T::BITS {
                self.hi.bit(i - T::BITS)
            } else {
                self.lo.bit(i)
            };
            f.write_str(if bit { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl<T: Limb> fmt::Octal for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 8 (diagnostics only).
        let eight = T::from_u8(8);
        let mut digits = [0u8; 90];
        let mut n = *self;
        let mut len = 0;
        while !n.is_zero() {
            let (q, r) = n.div_rem_limb(eight).expect("eight is nonzero");
            digits[len] = b'0' + r.to_u128() as u8;
            len += 1;
            n = q;
        }
        for i in (0..len).rev() {
            write!(f, "{}", (digits[i] - b'0'))?;
        }
        Ok(())
    }
}

impl<T: Limb> fmt::LowerHex for DWord<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == T::ZERO {
            write!(f, "{:x}", self.lo)
        } else {
            write!(f, "{:x}", self.hi)?;
            // Zero-pad the low limb to a full limb's worth of nibbles.
            let nibbles = (T::BITS / 4) as usize;
            let mut buf = [0u8; 32];
            let mut lo = self.lo;
            for slot in buf.iter_mut().take(nibbles) {
                let nib = (lo.to_u128() & 0xf) as u8;
                *slot = if nib < 10 {
                    b'0' + nib
                } else {
                    b'a' + nib - 10
                };
                lo = lo.shr_full(4);
            }
            for i in (0..nibbles).rev() {
                write!(f, "{}", buf[i] as char)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dw(x: u128) -> DWord<u32> {
        DWord::from_u128_truncate(x)
    }

    #[test]
    fn parts_roundtrip() {
        let x = DWord::<u32>::from_parts(0xdead, 0xbeef);
        assert_eq!(x.hi(), 0xdead);
        assert_eq!(x.lo(), 0xbeef);
        assert_eq!(x.parts(), (0xdead, 0xbeef));
        assert_eq!(x.to_u128(), 0xdead_0000_beef);
    }

    #[test]
    fn add_sub_with_carries() {
        let a = dw(0xffff_ffff_ffff_ffff);
        let (s, c) = a.overflowing_add(dw(1));
        assert!(c);
        assert!(s.is_zero());
        let (d, b) = dw(0).overflowing_sub(dw(1));
        assert!(b);
        assert_eq!(d.to_u128(), u64::MAX as u128);
        assert_eq!(
            dw(5).wrapping_neg().to_u128(),
            (5u64.wrapping_neg()) as u128
        );
    }

    #[test]
    fn checked_ops() {
        assert_eq!(dw(3).checked_add(dw(4)), Some(dw(7)));
        assert_eq!(dw(u64::MAX as u128).checked_add(dw(1)), None);
        assert_eq!(dw(3).checked_sub(dw(4)), None);
        assert_eq!(dw(4).checked_sub(dw(3)), Some(dw(1)));
    }

    #[test]
    fn shifts_match_u64_oracle() {
        let vals = [
            0u64,
            1,
            0xffff_ffff,
            u64::MAX,
            0x8000_0000_0000_0000,
            0x1234_5678_9abc_def0,
        ];
        for &v in &vals {
            for n in 0..=64u32 {
                let d = dw(v as u128);
                let shl = if n >= 64 { 0 } else { v << n };
                let shr = if n >= 64 { 0 } else { v >> n };
                let sar = if n >= 64 {
                    ((v as i64) >> 63) as u64
                } else {
                    ((v as i64) >> n) as u64
                };
                assert_eq!(d.shl_full(n).to_u128(), shl as u128, "shl {v} {n}");
                assert_eq!(d.shr_full(n).to_u128(), shr as u128, "shr {v} {n}");
                assert_eq!(d.sar_full(n).to_u128(), sar as u128, "sar {v} {n}");
            }
        }
    }

    #[test]
    fn pow2_all_exponents() {
        for k in 0..64 {
            assert_eq!(DWord::<u32>::pow2(k).to_u128(), 1u128 << k);
        }
    }

    #[test]
    #[should_panic(expected = "pow2 exponent out of range")]
    fn pow2_out_of_range_panics() {
        let _ = DWord::<u32>::pow2(64);
    }

    #[test]
    fn widening_mul_matches_oracle() {
        let vals = [0u32, 1, 2, 10, 0xffff, u32::MAX, 0x8000_0000];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    DWord::widening_mul(a, b).to_u128(),
                    (a as u128) * (b as u128)
                );
            }
        }
    }

    #[test]
    fn mul_limb_triple_word() {
        let x = dw(u64::MAX as u128);
        let (lo, carry) = x.mul_limb(u32::MAX);
        let full = (u64::MAX as u128) * (u32::MAX as u128);
        assert_eq!(lo.to_u128(), full & (u64::MAX as u128));
        assert_eq!(carry as u128, full >> 64);
    }

    #[test]
    fn div_rem_limb_matches_u64_oracle() {
        let nums = [
            0u64,
            1,
            9,
            10,
            11,
            99,
            100,
            u32::MAX as u64,
            u64::MAX,
            1 << 40,
            (1 << 40) + 123,
        ];
        let dens = [1u32, 2, 3, 7, 10, 641, 0x8000_0000, u32::MAX];
        for &n in &nums {
            for &d in &dens {
                let (q, r) = dw(n as u128).div_rem_limb(d).unwrap();
                assert_eq!(q.to_u128(), (n / d as u64) as u128, "{n}/{d}");
                assert_eq!(r as u64, n % d as u64, "{n}%{d}");
            }
        }
        assert!(dw(5).div_rem_limb(0).is_none());
    }

    #[test]
    fn div_rem_full_matches_u64_oracle() {
        let nums = [0u64, 1, u64::MAX, 1 << 63, 0xdead_beef_cafe_babe];
        let dens = [1u64, 2, 10, u32::MAX as u64 + 1, 1 << 63, u64::MAX];
        for &n in &nums {
            for &d in &dens {
                let (q, r) = dw(n as u128).div_rem(dw(d as u128)).unwrap();
                assert_eq!(q.to_u128(), (n / d) as u128, "{n}/{d}");
                assert_eq!(r.to_u128(), (n % d) as u128, "{n}%{d}");
            }
        }
        assert!(dw(5).div_rem(dw(0)).is_none());
    }

    #[test]
    fn div_rem_limb_u128_limbs() {
        // 2^200 / 10 with 128-bit limbs.
        let n = DWord::<u128>::pow2(200);
        let (q, r) = n.div_rem_limb(10).unwrap();
        // 2^200 = 1606938044258990275541962092341162602522202993782792835301376
        // q = that / 10, r = 6 (2^200 mod 10 == 6 since 2^200 ends in 6).
        assert_eq!(r, 6);
        let (q2, c) = q.mul_limb(10);
        assert_eq!(c, 0);
        assert_eq!(q2.wrapping_add_limb(6), n);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(dw(0) < dw(1));
        assert!(dw(u32::MAX as u128) < dw(u32::MAX as u128 + 1));
        assert!(DWord::<u32>::from_parts(1, 0) > DWord::from_parts(0, u32::MAX));
    }

    #[test]
    fn display_and_hex() {
        extern crate alloc;
        use alloc::format;
        assert_eq!(format!("{}", dw(0)), "0");
        assert_eq!(format!("{}", dw(1234567890123)), "1234567890123");
        assert_eq!(format!("{:x}", dw(0xdead_0000_beef)), "dead0000beef");
        assert_eq!(format!("{:x}", dw(0x1_0000_0000)), "100000000");
    }

    #[test]
    fn numeric_formats_match_u64_oracle() {
        extern crate alloc;
        use alloc::format;
        for v in [0u64, 1, 8, 9, 255, 0xdead_beef, u64::MAX, 1 << 63] {
            let d = dw(v as u128);
            assert_eq!(format!("{d:x}"), format!("{v:x}"), "{v}");
            assert_eq!(format!("{d:X}"), format!("{v:X}"), "{v}");
            assert_eq!(format!("{d:b}"), format!("{v:b}"), "{v}");
            assert_eq!(format!("{d:o}"), format!("{v:o}"), "{v}");
        }
    }

    #[test]
    fn leading_zeros_counts_both_limbs() {
        assert_eq!(dw(0).leading_zeros(), 64);
        assert_eq!(dw(1).leading_zeros(), 63);
        assert_eq!(dw(1 << 32).leading_zeros(), 31);
        assert_eq!(dw(u64::MAX as u128).leading_zeros(), 0);
    }

    #[test]
    fn sdword_sign_reading() {
        assert!(!dw(1).is_negative_as_sdword());
        assert!(dw(1u128 << 63).is_negative_as_sdword());
        assert!(dw(5).wrapping_neg().is_negative_as_sdword());
    }
}
