//! The [`Limb`] trait: the unsigned machine word a [`DWord`] is built from.
//!
//! [`DWord`]: crate::DWord

use core::fmt;
use core::hash::Hash;
use core::ops::{BitAnd, BitOr, BitXor, Not};

/// An unsigned machine word usable as half of a [`DWord`](crate::DWord).
///
/// This is deliberately a *narrow* interface: exactly the operations the
/// paper's compile-time arithmetic needs, implemented for `u8`, `u16`,
/// `u32`, `u64` and `u128`. The trait is sealed — the algorithms in the
/// workspace are only proved (and tested) for two's-complement words of
/// power-of-two width.
///
/// # Examples
///
/// ```
/// use magicdiv_dword::Limb;
///
/// fn is_pow2<T: Limb>(x: T) -> bool {
///     x != T::ZERO && x.bitand(x.wrapping_sub(T::ONE)) == T::ZERO
/// }
/// assert!(is_pow2(64u32));
/// assert!(!is_pow2(100u64));
/// ```
pub trait Limb:
    Copy
    + Eq
    + Ord
    + Hash
    + Default
    + fmt::Debug
    + fmt::Display
    + fmt::LowerHex
    + fmt::UpperHex
    + fmt::Binary
    + fmt::Octal
    + BitAnd<Output = Self>
    + BitOr<Output = Self>
    + BitXor<Output = Self>
    + Not<Output = Self>
    + Send
    + Sync
    + sealed::Sealed
    + 'static
{
    /// Number of bits in the word (the paper's `N`).
    const BITS: u32;
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The all-ones word, `2^N - 1`.
    const MAX: Self;

    /// Addition modulo `2^N`.
    fn wrapping_add(self, rhs: Self) -> Self;
    /// Subtraction modulo `2^N`.
    fn wrapping_sub(self, rhs: Self) -> Self;
    /// Multiplication modulo `2^N` (the paper's `MULL`).
    fn wrapping_mul(self, rhs: Self) -> Self;
    /// Two's-complement negation.
    fn wrapping_neg(self) -> Self;
    /// Addition with carry-out.
    fn overflowing_add(self, rhs: Self) -> (Self, bool);
    /// Subtraction with borrow-out.
    fn overflowing_sub(self, rhs: Self) -> (Self, bool);
    /// Native truncating division, `None` when `rhs == 0`.
    fn checked_div(self, rhs: Self) -> Option<Self>;
    /// Native remainder, `None` when `rhs == 0`.
    fn checked_rem(self, rhs: Self) -> Option<Self>;

    /// Logical left shift by `n` bits; returns zero when `n >= BITS`.
    fn shl_full(self, n: u32) -> Self;
    /// Logical right shift by `n` bits; returns zero when `n >= BITS`.
    fn shr_full(self, n: u32) -> Self;

    /// Number of leading zero bits.
    fn leading_zeros(self) -> u32;
    /// Number of trailing zero bits.
    fn trailing_zeros(self) -> u32;
    /// Population count.
    fn count_ones(self) -> u32;

    /// Converts from a small constant.
    fn from_u8(x: u8) -> Self;
    /// Widens into `u128`, zero-extending. Lossless for all implementors.
    fn to_u128(self) -> u128;
    /// Truncates a `u128` into this word, keeping the low `BITS` bits.
    fn from_u128_truncate(x: u128) -> Self;

    /// Full `N x N -> 2N` multiplication; returns `(hi, lo)`.
    ///
    /// `hi` is the paper's `MULUH(self, rhs)` and `lo` is
    /// `MULL(self, rhs)`.
    fn widening_mul(self, rhs: Self) -> (Self, Self);

    /// The most significant bit, i.e. the sign bit under a signed reading.
    #[inline]
    fn msb(self) -> bool {
        self.shr_full(Self::BITS - 1) == Self::ONE
    }

    /// Value of bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `i >= BITS`.
    #[inline]
    fn bit(self, i: u32) -> bool {
        debug_assert!(i < Self::BITS);
        self.shr_full(i) & Self::ONE == Self::ONE
    }

    /// `true` when the word is an exact power of two.
    #[inline]
    fn is_power_of_two(self) -> bool {
        self != Self::ZERO && self & self.wrapping_sub(Self::ONE) == Self::ZERO
    }

    /// `⌈log2 x⌉` for `x > 0`, via the paper's leading-zero-count identity
    /// `⌈log2 x⌉ = N - LDZ(x - 1)`.
    ///
    /// # Panics
    ///
    /// Panics when `x == 0`.
    #[inline]
    fn ceil_log2(self) -> u32 {
        assert!(self != Self::ZERO, "ceil_log2 of zero");
        Self::BITS - self.wrapping_sub(Self::ONE).leading_zeros()
    }

    /// `⌊log2 x⌋` for `x > 0`, via `⌊log2 x⌋ = N - 1 - LDZ(x)`.
    ///
    /// # Panics
    ///
    /// Panics when `x == 0`.
    #[inline]
    fn floor_log2(self) -> u32 {
        assert!(self != Self::ZERO, "floor_log2 of zero");
        Self::BITS - 1 - self.leading_zeros()
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u16 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for u128 {}
}

/// Schoolbook `N x N -> 2N` multiplication using only `N`-bit arithmetic.
///
/// Used directly for `u128` (which has no wider native type) and as the
/// test oracle for the native fast paths of the narrower limbs.
pub(crate) fn widening_mul_schoolbook<T: Limb>(a: T, b: T) -> (T, T) {
    let h = T::BITS / 2;
    let mask = T::MAX.shr_full(h);
    let (a0, a1) = (a & mask, a.shr_full(h));
    let (b0, b1) = (b & mask, b.shr_full(h));

    let ll = a0.wrapping_mul(b0);
    let lh = a0.wrapping_mul(b1);
    let hl = a1.wrapping_mul(b0);
    let hh = a1.wrapping_mul(b1);

    // Accumulate the two middle partial products into the halves.
    let (mid, carry_mid) = lh.overflowing_add(hl);
    let mid_lo = mid.shl_full(h);
    let mid_hi = mid.shr_full(h)
        | if carry_mid {
            T::ONE.shl_full(h)
        } else {
            T::ZERO
        };

    let (lo, carry_lo) = ll.overflowing_add(mid_lo);
    let hi = hh
        .wrapping_add(mid_hi)
        .wrapping_add(if carry_lo { T::ONE } else { T::ZERO });
    (hi, lo)
}

macro_rules! impl_limb_narrow {
    ($t:ty, $wide:ty) => {
        impl Limb for $t {
            const BITS: u32 = <$t>::BITS;
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MAX: Self = <$t>::MAX;

            #[inline]
            fn wrapping_add(self, rhs: Self) -> Self {
                <$t>::wrapping_add(self, rhs)
            }
            #[inline]
            fn wrapping_sub(self, rhs: Self) -> Self {
                <$t>::wrapping_sub(self, rhs)
            }
            #[inline]
            fn wrapping_mul(self, rhs: Self) -> Self {
                <$t>::wrapping_mul(self, rhs)
            }
            #[inline]
            fn wrapping_neg(self) -> Self {
                <$t>::wrapping_neg(self)
            }
            #[inline]
            fn overflowing_add(self, rhs: Self) -> (Self, bool) {
                <$t>::overflowing_add(self, rhs)
            }
            #[inline]
            fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
                <$t>::overflowing_sub(self, rhs)
            }
            #[inline]
            fn checked_div(self, rhs: Self) -> Option<Self> {
                <$t>::checked_div(self, rhs)
            }
            #[inline]
            fn checked_rem(self, rhs: Self) -> Option<Self> {
                <$t>::checked_rem(self, rhs)
            }
            #[inline]
            fn shl_full(self, n: u32) -> Self {
                if n >= Self::BITS {
                    0
                } else {
                    self << n
                }
            }
            #[inline]
            fn shr_full(self, n: u32) -> Self {
                if n >= Self::BITS {
                    0
                } else {
                    self >> n
                }
            }
            #[inline]
            fn leading_zeros(self) -> u32 {
                <$t>::leading_zeros(self)
            }
            #[inline]
            fn trailing_zeros(self) -> u32 {
                <$t>::trailing_zeros(self)
            }
            #[inline]
            fn count_ones(self) -> u32 {
                <$t>::count_ones(self)
            }
            #[inline]
            fn from_u8(x: u8) -> Self {
                x as $t
            }
            #[inline]
            fn to_u128(self) -> u128 {
                self as u128
            }
            #[inline]
            fn from_u128_truncate(x: u128) -> Self {
                x as $t
            }
            #[inline]
            fn widening_mul(self, rhs: Self) -> (Self, Self) {
                let wide = (self as $wide) * (rhs as $wide);
                ((wide >> Self::BITS) as $t, wide as $t)
            }
        }
    };
}

impl_limb_narrow!(u8, u16);
impl_limb_narrow!(u16, u32);
impl_limb_narrow!(u32, u64);
impl_limb_narrow!(u64, u128);

impl Limb for u128 {
    const BITS: u32 = u128::BITS;
    const ZERO: Self = 0;
    const ONE: Self = 1;
    const MAX: Self = u128::MAX;

    #[inline]
    fn wrapping_add(self, rhs: Self) -> Self {
        u128::wrapping_add(self, rhs)
    }
    #[inline]
    fn wrapping_sub(self, rhs: Self) -> Self {
        u128::wrapping_sub(self, rhs)
    }
    #[inline]
    fn wrapping_mul(self, rhs: Self) -> Self {
        u128::wrapping_mul(self, rhs)
    }
    #[inline]
    fn wrapping_neg(self) -> Self {
        u128::wrapping_neg(self)
    }
    #[inline]
    fn overflowing_add(self, rhs: Self) -> (Self, bool) {
        u128::overflowing_add(self, rhs)
    }
    #[inline]
    fn overflowing_sub(self, rhs: Self) -> (Self, bool) {
        u128::overflowing_sub(self, rhs)
    }
    #[inline]
    fn checked_div(self, rhs: Self) -> Option<Self> {
        u128::checked_div(self, rhs)
    }
    #[inline]
    fn checked_rem(self, rhs: Self) -> Option<Self> {
        u128::checked_rem(self, rhs)
    }
    #[inline]
    fn shl_full(self, n: u32) -> Self {
        if n >= Self::BITS {
            0
        } else {
            self << n
        }
    }
    #[inline]
    fn shr_full(self, n: u32) -> Self {
        if n >= Self::BITS {
            0
        } else {
            self >> n
        }
    }
    #[inline]
    fn leading_zeros(self) -> u32 {
        u128::leading_zeros(self)
    }
    #[inline]
    fn trailing_zeros(self) -> u32 {
        u128::trailing_zeros(self)
    }
    #[inline]
    fn count_ones(self) -> u32 {
        u128::count_ones(self)
    }
    #[inline]
    fn from_u8(x: u8) -> Self {
        x as u128
    }
    #[inline]
    fn to_u128(self) -> u128 {
        self
    }
    #[inline]
    fn from_u128_truncate(x: u128) -> Self {
        x
    }
    #[inline]
    fn widening_mul(self, rhs: Self) -> (Self, Self) {
        widening_mul_schoolbook(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logs_match_float_reference() {
        for x in 1u32..=4096 {
            assert_eq!(x.ceil_log2(), (x as f64).log2().ceil() as u32, "ceil {x}");
            assert_eq!(
                x.floor_log2(),
                (x as f64).log2().floor() as u32,
                "floor {x}"
            );
        }
        assert_eq!(u32::MAX.ceil_log2(), 32);
        assert_eq!(u32::MAX.floor_log2(), 31);
        assert_eq!(1u32.ceil_log2(), 0);
        assert_eq!(1u32.floor_log2(), 0);
    }

    #[test]
    fn shl_shr_full_saturate() {
        assert_eq!(1u8.shl_full(8), 0);
        assert_eq!(0x80u8.shr_full(8), 0);
        assert_eq!(1u8.shl_full(7), 0x80);
        assert_eq!(0x80u8.shr_full(7), 1);
        assert_eq!(1u128.shl_full(127), 1 << 127);
        assert_eq!(1u128.shl_full(128), 0);
    }

    #[test]
    fn msb_and_bit() {
        assert!(0x80u8.msb());
        assert!(!0x7fu8.msb());
        assert!(5u32.bit(0));
        assert!(!5u32.bit(1));
        assert!(5u32.bit(2));
        assert!((1u128 << 127).msb());
    }

    #[test]
    fn is_power_of_two_matches_std() {
        for x in 0u16..=u16::MAX {
            assert_eq!(Limb::is_power_of_two(x), x.is_power_of_two(), "{x}");
        }
    }

    #[test]
    fn widening_mul_u8_exhaustive_vs_schoolbook() {
        for a in 0u8..=u8::MAX {
            for b in 0u8..=u8::MAX {
                let native = Limb::widening_mul(a, b);
                let school = widening_mul_schoolbook(a, b);
                let wide = (a as u16) * (b as u16);
                assert_eq!(native, ((wide >> 8) as u8, wide as u8));
                assert_eq!(native, school, "{a} * {b}");
            }
        }
    }

    #[test]
    fn widening_mul_u64_spot_vs_schoolbook() {
        let samples = [
            0u64,
            1,
            2,
            3,
            10,
            0xffff_ffff,
            0x1_0000_0001,
            u64::MAX,
            u64::MAX - 1,
            0x8000_0000_0000_0000,
            0xdead_beef_cafe_babe,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    Limb::widening_mul(a, b),
                    widening_mul_schoolbook(a, b),
                    "{a} * {b}"
                );
            }
        }
    }

    #[test]
    fn widening_mul_u128_matches_split_oracle() {
        // Oracle: compute via 64-bit limbs using u128 intermediate products.
        fn oracle(a: u128, b: u128) -> (u128, u128) {
            let (a0, a1) = (a as u64 as u128, a >> 64);
            let (b0, b1) = (b as u64 as u128, b >> 64);
            let ll = a0 * b0;
            let lh = a0 * b1;
            let hl = a1 * b0;
            let hh = a1 * b1;
            let mid = (ll >> 64) + (lh & u64::MAX as u128) + (hl & u64::MAX as u128);
            let lo = (mid << 64) | (ll & u64::MAX as u128);
            let hi = hh + (lh >> 64) + (hl >> 64) + (mid >> 64);
            (hi, lo)
        }
        let samples = [
            0u128,
            1,
            3,
            10,
            u64::MAX as u128,
            (u64::MAX as u128) + 1,
            u128::MAX,
            u128::MAX - 1,
            1 << 127,
            0xdead_beef_cafe_babe_0123_4567_89ab_cdef,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(Limb::widening_mul(a, b), oracle(a, b), "{a} * {b}");
            }
        }
    }
}
