//! Randomized tests for the doubleword substrate (deterministic
//! splitmix64 driver — no external crates), with special attention to
//! `u128` limbs — the configuration with no native oracle, checked
//! through algebraic laws instead.

use magicdiv_dword::DWord;

const CASES: usize = 512;

/// splitmix64 — the same deterministic generator the verifier uses.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Sometimes an edge case (small, power-of-two-ish, near MAX),
    /// otherwise uniform.
    fn edgy_u128(&mut self) -> u128 {
        match self.next_u64() % 8 {
            0 => self.next_u64() as u128 % 16,
            1 => {
                let k = self.next_u64() % 128;
                let p = 1u128 << k;
                [p, p.wrapping_sub(1), p.wrapping_add(1)][(self.next_u64() % 3) as usize]
            }
            2 => u128::MAX - self.next_u64() as u128 % 16,
            _ => self.next_u128(),
        }
    }
}

// ---- u64 limbs: u128 oracle available ----

#[test]
fn mul_limb_matches_oracle() {
    let mut rng = Rng::new(0x11);
    for _ in 0..CASES {
        let a = rng.edgy_u128();
        let m = rng.next_u64();
        let (lo, carry) = DWord::<u64>::from_u128_truncate(a).mul_limb(m);
        // a*m as a 192-bit value: low 128 bits + carry * 2^128.
        let expect_lo = a.wrapping_mul(m as u128);
        assert_eq!(lo.to_u128(), expect_lo, "a={a} m={m}");
        // carry = floor(a*m / 2^128), computed via the high halves.
        let ah = a >> 64;
        let al = a & u64::MAX as u128;
        let full_hi = ah * m as u128 + ((al * m as u128) >> 64);
        assert_eq!(carry as u128, full_hi >> 64, "a={a} m={m}");
    }
}

#[test]
fn full_div_rem_matches_oracle() {
    let mut rng = Rng::new(0x12);
    for _ in 0..CASES {
        let a = rng.edgy_u128();
        let d = rng.edgy_u128().max(1);
        let da = DWord::<u64>::from_u128_truncate(a);
        let dd = DWord::<u64>::from_u128_truncate(d);
        let (q, r) = da.div_rem(dd).unwrap();
        assert_eq!(q.to_u128(), a / d, "a={a} d={d}");
        assert_eq!(r.to_u128(), a % d, "a={a} d={d}");
    }
}

#[test]
fn carries_roundtrip() {
    let mut rng = Rng::new(0x13);
    for _ in 0..CASES {
        let a = rng.edgy_u128();
        let b = rng.edgy_u128();
        let da = DWord::<u64>::from_u128_truncate(a);
        let db = DWord::<u64>::from_u128_truncate(b);
        let (sum, carry) = da.overflowing_add(db);
        assert_eq!(carry, a.checked_add(b).is_none());
        let (back, borrow) = sum.overflowing_sub(db);
        assert_eq!(back, da);
        assert_eq!(borrow, carry); // wrapped sums borrow on the way back
    }
}

// ---- u128 limbs: algebraic laws only ----

#[test]
fn u128_div_rem_reconstructs() {
    let mut rng = Rng::new(0x14);
    for _ in 0..CASES {
        let hi = rng.edgy_u128();
        let lo = rng.edgy_u128();
        let d = rng.edgy_u128().max(1);
        let a = DWord::<u128>::from_parts(hi, lo);
        let (q, r) = a.div_rem_limb(d).unwrap();
        assert!(r < d);
        // q*d + r == a, via mul_limb (checked not to overflow 2 limbs).
        let (prod, carry) = q.mul_limb(d);
        assert_eq!(carry, 0);
        let (sum, overflow) = prod.overflowing_add(DWord::from_lo(r));
        assert!(!overflow);
        assert_eq!(sum, a);
    }
}

#[test]
fn u128_widening_mul_distributes() {
    let mut rng = Rng::new(0x15);
    for _ in 0..CASES {
        let a = rng.edgy_u128();
        let b = rng.edgy_u128();
        let c = rng.edgy_u128();
        // (a + c) * b == a*b + c*b over the doubleword ring (wrapping at 256).
        let ab = DWord::<u128>::widening_mul(a, b);
        let cb = DWord::<u128>::widening_mul(c, b);
        let acb = DWord::<u128>::widening_mul(a.wrapping_add(c), b);
        // a + c may wrap: compensate with the carry term 2^128 * b.
        let mut expect = ab.wrapping_add(cb);
        if a.checked_add(c).is_none() {
            expect = expect.wrapping_sub(DWord::from_hi(b));
        }
        assert_eq!(acb, expect, "a={a} b={b} c={c}");
    }
}

#[test]
fn u128_shifts_compose() {
    let mut rng = Rng::new(0x16);
    for _ in 0..CASES {
        let hi = rng.edgy_u128();
        let lo = rng.edgy_u128();
        let s1 = (rng.next_u64() % 256) as u32;
        let s2 = (rng.next_u64() % 256) as u32;
        let a = DWord::<u128>::from_parts(hi, lo);
        let total = s1.saturating_add(s2).min(256);
        let two_step = a.shr_full(s1).shr_full(s2);
        let one_step = a.shr_full(total);
        assert_eq!(two_step, one_step);
        let two_step = a.shl_full(s1).shl_full(s2);
        let one_step = a.shl_full(total);
        assert_eq!(two_step, one_step);
    }
}

#[test]
fn u128_leading_zeros_brackets_value() {
    let mut rng = Rng::new(0x17);
    for _ in 0..CASES {
        let hi = rng.edgy_u128();
        let lo = rng.edgy_u128();
        let a = DWord::<u128>::from_parts(hi, lo);
        let lz = a.leading_zeros();
        assert!(lz <= 256);
        if lz < 256 {
            // Bit (255 - lz) is the highest set bit: pow2(255-lz) <= a,
            // and (for lz > 0) a < pow2(256-lz).
            let probe = DWord::<u128>::pow2(255 - lz);
            assert!(a >= probe);
            if lz > 0 {
                assert!(a < probe.shl_full(1));
            }
        } else {
            assert!(a.is_zero());
        }
    }
}

#[test]
fn u128_ordering_consistent_with_subtraction() {
    let mut rng = Rng::new(0x18);
    for _ in 0..CASES {
        let a = DWord::<u128>::from_parts(rng.edgy_u128(), rng.edgy_u128());
        let b = DWord::<u128>::from_parts(rng.edgy_u128(), rng.edgy_u128());
        let (_, borrow) = a.overflowing_sub(b);
        assert_eq!(borrow, a < b);
    }
}

#[test]
fn sar_matches_shr_for_nonnegative() {
    let mut rng = Rng::new(0x19);
    for _ in 0..CASES {
        let hi = rng.next_u64();
        let lo = rng.next_u64();
        let s = (rng.next_u64() % 128) as u32;
        let a = DWord::<u64>::from_parts(hi >> 1, lo); // clear the sign bit
        assert_eq!(a.sar_full(s), a.shr_full(s));
    }
}
