//! Property tests for the doubleword substrate, with special attention to
//! `u128` limbs — the configuration with no native oracle, checked through
//! algebraic laws instead.

use magicdiv_dword::DWord;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // ---- u64 limbs: u128 oracle available ----

    #[test]
    fn mul_limb_matches_oracle(a in any::<u128>(), m in any::<u64>()) {
        let (lo, carry) = DWord::<u64>::from_u128_truncate(a).mul_limb(m);
        // a*m as a 192-bit value: low 128 bits + carry * 2^128.
        let expect_lo = a.wrapping_mul(m as u128);
        prop_assert_eq!(lo.to_u128(), expect_lo);
        // carry = floor(a*m / 2^128), computed via the high halves.
        let ah = a >> 64;
        let al = a & u64::MAX as u128;
        let full_hi = ah * m as u128 + ((al * m as u128) >> 64);
        prop_assert_eq!(carry as u128, full_hi >> 64);
    }

    #[test]
    fn full_div_rem_matches_oracle(a in any::<u128>(), d in 1u128..) {
        let da = DWord::<u64>::from_u128_truncate(a);
        let dd = DWord::<u64>::from_u128_truncate(d);
        let (q, r) = da.div_rem(dd).unwrap();
        prop_assert_eq!(q.to_u128(), a / d);
        prop_assert_eq!(r.to_u128(), a % d);
    }

    #[test]
    fn carries_roundtrip(a in any::<u128>(), b in any::<u128>()) {
        let da = DWord::<u64>::from_u128_truncate(a);
        let db = DWord::<u64>::from_u128_truncate(b);
        let (sum, carry) = da.overflowing_add(db);
        prop_assert_eq!(carry, a.checked_add(b).is_none());
        let (back, borrow) = sum.overflowing_sub(db);
        prop_assert_eq!(back, da);
        prop_assert_eq!(borrow, carry); // wrapped sums borrow on the way back
    }

    // ---- u128 limbs: algebraic laws only ----

    #[test]
    fn u128_div_rem_reconstructs(hi in any::<u128>(), lo in any::<u128>(), d in 1u128..) {
        let a = DWord::<u128>::from_parts(hi, lo);
        let (q, r) = a.div_rem_limb(d).unwrap();
        prop_assert!(r < d);
        // q*d + r == a, via mul_limb (checked not to overflow 2 limbs).
        let (prod, carry) = q.mul_limb(d);
        prop_assert_eq!(carry, 0);
        let (sum, overflow) = prod.overflowing_add(DWord::from_lo(r));
        prop_assert!(!overflow);
        prop_assert_eq!(sum, a);
    }

    #[test]
    fn u128_widening_mul_distributes(a in any::<u128>(), b in any::<u128>(), c in any::<u128>()) {
        // (a + c) * b == a*b + c*b over the doubleword ring (wrapping at 256).
        let ab = DWord::<u128>::widening_mul(a, b);
        let cb = DWord::<u128>::widening_mul(c, b);
        let acb = DWord::<u128>::widening_mul(a.wrapping_add(c), b);
        // a + c may wrap: compensate with the carry term 2^128 * b.
        let mut expect = ab.wrapping_add(cb);
        if a.checked_add(c).is_none() {
            expect = expect.wrapping_sub(DWord::from_hi(b));
        }
        prop_assert_eq!(acb, expect);
    }

    #[test]
    fn u128_shifts_compose(hi in any::<u128>(), lo in any::<u128>(), s1 in 0u32..256, s2 in 0u32..256) {
        let a = DWord::<u128>::from_parts(hi, lo);
        let total = s1.saturating_add(s2).min(256);
        let two_step = a.shr_full(s1).shr_full(s2);
        let one_step = a.shr_full(total);
        prop_assert_eq!(two_step, one_step);
        let two_step = a.shl_full(s1).shl_full(s2);
        let one_step = a.shl_full(total);
        prop_assert_eq!(two_step, one_step);
    }

    #[test]
    fn u128_leading_zeros_brackets_value(hi in any::<u128>(), lo in any::<u128>()) {
        let a = DWord::<u128>::from_parts(hi, lo);
        let lz = a.leading_zeros();
        prop_assert!(lz <= 256);
        if lz < 256 {
            // Bit (255 - lz) is the highest set bit: pow2(255-lz) <= a,
            // and (for lz > 0) a < pow2(256-lz).
            let probe = DWord::<u128>::pow2(255 - lz);
            prop_assert!(a >= probe);
            if lz > 0 {
                prop_assert!(a < probe.shl_full(1));
            }
        } else {
            prop_assert!(a.is_zero());
        }
    }

    #[test]
    fn u128_ordering_consistent_with_subtraction(a1 in any::<u128>(), a0 in any::<u128>(), b1 in any::<u128>(), b0 in any::<u128>()) {
        let a = DWord::<u128>::from_parts(a1, a0);
        let b = DWord::<u128>::from_parts(b1, b0);
        let (_, borrow) = a.overflowing_sub(b);
        prop_assert_eq!(borrow, a < b);
    }

    #[test]
    fn sar_matches_shr_for_nonnegative(hi in any::<u64>(), lo in any::<u64>(), s in 0u32..128) {
        let a = DWord::<u64>::from_parts(hi >> 1, lo); // clear the sign bit
        prop_assert_eq!(a.sar_full(s), a.shr_full(s));
    }
}
