//! Radix conversion — the paper's Figure 11.1 kernel and its
//! generalization to arbitrary bases.
//!
//! "The program converts a binary number to a decimal string. It
//! calculates one quotient and one remainder per output digit." Base
//! conversion is one of the §1 motivating workloads ("integer division is
//! used heavily in base conversions").

use magicdiv::{DivisorError, UnsignedDivisor};

/// Converts `x` to decimal with hardware division (the baseline of
/// Table 11.2's "time with division performed" column).
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::decimal_baseline;
///
/// assert_eq!(decimal_baseline(0), "0");
/// assert_eq!(decimal_baseline(1994), "1994");
/// ```
pub fn decimal_baseline(mut x: u32) -> String {
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (x % 10) as u8;
        x /= 10;
        if x == 0 {
            break;
        }
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

/// Converts `x` to decimal with the division eliminated (Table 11.2's
/// "time with division eliminated" column): one magic multiply and one
/// multiply-back per digit.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::decimal_magic;
///
/// assert_eq!(decimal_magic(u32::MAX), u32::MAX.to_string());
/// ```
pub fn decimal_magic(mut x: u32) -> String {
    // The divisor is a compile-time constant here, exactly as in Fig 11.1.
    static BY10: std::sync::OnceLock<UnsignedDivisor<u32>> = std::sync::OnceLock::new();
    let by10 = BY10.get_or_init(|| UnsignedDivisor::new(10).expect("10 != 0"));
    let mut buf = [0u8; 10];
    let mut i = buf.len();
    loop {
        let (q, r) = by10.div_rem(x);
        i -= 1;
        buf[i] = b'0' + r as u8;
        x = q;
        if x == 0 {
            break;
        }
    }
    String::from_utf8_lossy(&buf[i..]).into_owned()
}

/// Converts `x` to an arbitrary base (2–36) with a run-time invariant
/// divisor hoisted out of the digit loop — the §4 "run-time invariant"
/// use case.
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `base < 2` (a base below two has
/// no positional representation; base 1's divisor would loop forever).
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::to_base;
///
/// assert_eq!(to_base(255, 16)?, "ff");
/// assert_eq!(to_base(255, 2)?, "11111111");
/// assert_eq!(to_base(0, 7)?, "0");
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn to_base(mut x: u64, base: u32) -> Result<String, DivisorError> {
    if !(2..=36).contains(&base) {
        return Err(DivisorError::Zero);
    }
    let div = magicdiv::InvariantUnsignedDivisor::new(base as u64)?;
    const DIGITS: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    let mut out = Vec::new();
    loop {
        let (q, r) = div.div_rem(x);
        out.push(DIGITS[r as usize]);
        x = q;
        if x == 0 {
            break;
        }
    }
    out.reverse();
    Ok(String::from_utf8(out).expect("digits are ASCII"))
}

/// Sums the digits of `count` consecutive values starting at `start`,
/// converting each with either path — the bench harness's inner loop
/// (returns a checksum so the work cannot be optimized away).
pub fn radix_checksum(start: u32, count: u32, magic: bool) -> u64 {
    let mut sum = 0u64;
    for i in 0..count {
        let x = start.wrapping_add(i.wrapping_mul(2_654_435_769)); // golden-ratio stride
        let s = if magic {
            decimal_magic(x)
        } else {
            decimal_baseline(x)
        };
        sum += s.bytes().map(u64::from).sum::<u64>();
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_paths_agree_with_std() {
        for x in [
            0u32,
            1,
            9,
            10,
            99,
            100,
            1994,
            123456789,
            u32::MAX,
            u32::MAX - 1,
        ] {
            assert_eq!(decimal_baseline(x), x.to_string());
            assert_eq!(decimal_magic(x), x.to_string());
        }
        let mut state = 1u32;
        for _ in 0..10_000 {
            state = state.wrapping_mul(1664525).wrapping_add(1013904223);
            assert_eq!(decimal_magic(state), state.to_string());
        }
    }

    #[test]
    fn to_base_matches_format() {
        for x in [0u64, 1, 255, 1994, u32::MAX as u64, u64::MAX] {
            assert_eq!(to_base(x, 16).unwrap(), format!("{x:x}"));
            assert_eq!(to_base(x, 2).unwrap(), format!("{x:b}"));
            assert_eq!(to_base(x, 8).unwrap(), format!("{x:o}"));
            assert_eq!(to_base(x, 10).unwrap(), format!("{x}"));
        }
    }

    #[test]
    fn to_base_36_roundtrip() {
        for x in [0u64, 35, 36, 1295, 1296, u64::MAX] {
            let s = to_base(x, 36).unwrap();
            assert_eq!(u64::from_str_radix(&s, 36).unwrap(), x);
        }
    }

    #[test]
    fn invalid_bases_rejected() {
        assert!(to_base(5, 0).is_err());
        assert!(to_base(5, 1).is_err());
        assert!(to_base(5, 37).is_err());
    }

    #[test]
    fn checksums_agree_between_paths() {
        assert_eq!(
            radix_checksum(12345, 500, true),
            radix_checksum(12345, 500, false)
        );
    }
}
