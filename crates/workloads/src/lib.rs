//! # magicdiv-workloads — the paper's motivating workloads
//!
//! §1 motivates the optimization with base conversions, number-theoretic
//! codes, graphics/hashing codes, loop counts and pointer subtraction;
//! §11 evaluates on the Figure 11.1 radix-conversion kernel and notes the
//! hashing-heavy SPEC92 benchmarks improve up to ~30%. This crate
//! implements each workload twice — hardware division vs. the paper's
//! reciprocal sequences — with identical observable behaviour (asserted
//! by tests) so the bench harness can time the difference.
//!
//! * [`decimal_baseline`] / [`decimal_magic`] / [`to_base`] — radix
//!   conversion (Figure 11.1, Tables 11.1/11.2);
//! * [`PrimeHashTable`] / [`hashing_kernel`] — prime-modulus hashing
//!   (the SPEC92 note);
//! * [`mod_pow`] / [`TrialDivider`] / [`count_primes`] — number theory
//!   (using the §8 doubleword divider for 128-bit reductions);
//! * [`gcd_with_per_iteration_reciprocal`] — the §1 *counterexample*
//!   (varying divisor: the transformation hurts);
//! * [`PointerDiff`] — §9 exact division for pointer subtraction;
//! * [`trip_count`] / [`count_multiples`] — loop normalization and the
//!   §9 strength-reduced divisibility loop;
//! * [`blend_channel`] / [`PerspectiveDivider`] — the graphics kernels
//!   (divide by 255, perspective divide by an invariant depth);
//! * [`histogram_magic`] / [`split_timestamps_magic`] — batch division
//!   over slices via the plan-backed `div_slice`/`div_rem_slice` APIs.

// This repository *reimplements division*: clippy's suggestions to use the
// standard division helpers (div_ceil, is_multiple_of, ...) would replace
// the very algorithms under study.
#![allow(clippy::manual_div_ceil, clippy::manual_is_multiple_of)]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod bignum;
mod calendar;
mod graphics;
mod hashing;
mod loops;
mod numtheory;
mod pointers;
mod radix;

pub use crate::batch::{
    batch_kernel, histogram_baseline, histogram_magic, split_timestamps_baseline,
    split_timestamps_magic,
};
pub use crate::bignum::{bignum_kernel, BigUint};
pub use crate::calendar::{
    calendar_kernel, civil_from_days, civil_from_days_baseline, hms, hms_baseline, is_leap_year,
    is_leap_year_baseline, leap_year_kernel, CivilDate,
};
pub use crate::graphics::{
    blend_buffers, blend_channel, blend_channel_baseline, graphics_kernel, PerspectiveDivider,
};
pub use crate::hashing::{hashing_kernel, PrimeHashTable, Reduction};
pub use crate::loops::{
    count_divisible, count_divisible_baseline, count_multiples, count_multiples_baseline,
    trip_count, trip_count_signed,
};
pub use crate::numtheory::{
    count_primes, gcd, gcd_with_per_iteration_reciprocal, mod_pow, mod_pow_baseline, TrialDivider,
};
pub use crate::pointers::{pointer_diff_kernel, PointerDiff};
pub use crate::radix::{decimal_baseline, decimal_magic, radix_checksum, to_base};
