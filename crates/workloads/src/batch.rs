//! Batch division — whole-slice workloads over one invariant divisor.
//!
//! §1's motivating codes (hashing, graphics, base conversion) rarely
//! divide a single value: they divide *streams* by the same constant.
//! The plan-backed divisors expose [`div_slice`](UnsignedDivisor::div_slice)
//! and [`div_rem_slice`](UnsignedDivisor::div_rem_slice), which hoist the
//! strategy dispatch out of the loop — the per-element work is exactly
//! the paper's straight-line multiply/shift sequence. This module wraps
//! them in two throughput kernels (each paired with a hardware-division
//! baseline so the bench harness can time the difference):
//!
//! * [`histogram_magic`] — bucket a sample stream by `⌊n / width⌋`;
//! * [`split_timestamps_magic`] — split ticks into whole units plus a
//!   remainder, quotient and remainder produced per element.

use magicdiv::{DivisorError, UnsignedDivisor};

/// Buckets every sample into `min(⌊n / bucket_width⌋, n_buckets - 1)`
/// with hardware division, returning the per-bucket counts.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::histogram_baseline;
///
/// let counts = histogram_baseline(&[0, 5, 10, 15, 99], 10, 3);
/// assert_eq!(counts, vec![2, 2, 1]);
/// ```
pub fn histogram_baseline(samples: &[u64], bucket_width: u64, n_buckets: usize) -> Vec<u64> {
    assert!(bucket_width > 0 && n_buckets > 0);
    let mut counts = vec![0u64; n_buckets];
    for &n in samples {
        let b = ((n / bucket_width) as usize).min(n_buckets - 1);
        counts[b] += 1;
    }
    counts
}

/// [`histogram_baseline`] via a plan-backed divisor and
/// [`UnsignedDivisor::div_slice`] over the whole sample stream.
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `bucket_width == 0`.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::{histogram_baseline, histogram_magic};
///
/// let samples: Vec<u64> = (0..500).map(|i| i * 37 % 1009).collect();
/// assert_eq!(
///     histogram_magic(&samples, 100, 8)?,
///     histogram_baseline(&samples, 100, 8),
/// );
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn histogram_magic(
    samples: &[u64],
    bucket_width: u64,
    n_buckets: usize,
) -> Result<Vec<u64>, DivisorError> {
    assert!(n_buckets > 0);
    let div = UnsignedDivisor::new(bucket_width)?;
    let mut quotients = vec![0u64; samples.len()];
    div.div_slice(samples, &mut quotients);
    let mut counts = vec![0u64; n_buckets];
    for &q in &quotients {
        counts[(q as usize).min(n_buckets - 1)] += 1;
    }
    Ok(counts)
}

/// Splits every tick count into `(whole units, leftover ticks)` with
/// hardware division — the timestamp-formatting inner loop.
pub fn split_timestamps_baseline(ticks: &[u64], per_unit: u64) -> (Vec<u64>, Vec<u64>) {
    assert!(per_unit > 0);
    let units = ticks.iter().map(|&t| t / per_unit).collect();
    let rest = ticks.iter().map(|&t| t % per_unit).collect();
    (units, rest)
}

/// [`split_timestamps_baseline`] via [`UnsignedDivisor::div_rem_slice`]:
/// one pass computes both outputs, the remainder by multiply-back (§1's
/// "one additional multiplication and subtraction" per element).
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `per_unit == 0`.
pub fn split_timestamps_magic(
    ticks: &[u64],
    per_unit: u64,
) -> Result<(Vec<u64>, Vec<u64>), DivisorError> {
    let div = UnsignedDivisor::new(per_unit)?;
    let mut units = vec![0u64; ticks.len()];
    let mut rest = vec![0u64; ticks.len()];
    div.div_rem_slice(ticks, &mut units, &mut rest);
    Ok((units, rest))
}

/// The bench kernel: streams `n` pseudo-random samples through both batch
/// shapes and returns a checksum.
pub fn batch_kernel(n: u64, bucket_width: u64) -> u64 {
    let samples: Vec<u64> = (0..n)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect();
    let counts = histogram_magic(&samples, bucket_width.max(1), 64).expect("nonzero width");
    let (units, rest) = split_timestamps_magic(&samples, 1_000_000_007).expect("nonzero");
    let mut sum = 0u64;
    for c in counts {
        sum = sum.wrapping_add(c).rotate_left(1);
    }
    for (u, r) in units.iter().zip(&rest) {
        sum = sum.wrapping_add(u ^ r).rotate_left(1);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .collect()
    }

    #[test]
    fn histogram_matches_baseline() {
        let samples = stream(1000);
        for width in [1u64, 7, 10, 255, 1 << 40, u64::MAX] {
            assert_eq!(
                histogram_magic(&samples, width, 16).unwrap(),
                histogram_baseline(&samples, width, 16),
                "width={width}"
            );
        }
    }

    #[test]
    fn timestamps_match_baseline() {
        let ticks = stream(500);
        for per_unit in [1u64, 60, 1000, 1_000_000_007] {
            assert_eq!(
                split_timestamps_magic(&ticks, per_unit).unwrap(),
                split_timestamps_baseline(&ticks, per_unit),
                "per_unit={per_unit}"
            );
        }
    }

    #[test]
    fn zero_divisor_is_an_error() {
        assert!(histogram_magic(&[1, 2], 0, 4).is_err());
        assert!(split_timestamps_magic(&[1, 2], 0).is_err());
    }

    #[test]
    fn kernel_is_deterministic() {
        assert_eq!(batch_kernel(256, 10), batch_kernel(256, 10));
    }
}
