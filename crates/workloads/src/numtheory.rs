//! Number-theoretic kernels — §1: "integer division is used heavily in
//! ... number theoretic codes", and §11: "we anticipate significant
//! improvements on some number theoretic codes."
//!
//! The modulus of a modular-exponentiation or trial-division loop is a
//! run-time invariant, so the reciprocal is computed once. The Euclidean
//! GCD, by contrast, changes its divisor every iteration — the paper's
//! §1 caveat ("ineffective when a divisor is not invariant") — and is
//! included as the counterexample.

use magicdiv::DWord;
use magicdiv::{DivisorError, DwordDivisor, InvariantUnsignedDivisor};

/// Modular exponentiation `base^exp mod m` with the modulus reciprocal
/// hoisted; the 128-bit intermediate products are reduced with the §8
/// doubleword divider.
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `m == 0`.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::mod_pow;
///
/// assert_eq!(mod_pow(2, 10, 1000)?, 24);
/// // Fermat's little theorem: a^(p-1) = 1 mod p.
/// assert_eq!(mod_pow(123456789, 1_000_000_006, 1_000_000_007)?, 1);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn mod_pow(base: u64, mut exp: u64, m: u64) -> Result<u64, DivisorError> {
    if m == 0 {
        return Err(DivisorError::Zero);
    }
    if m == 1 {
        return Ok(0);
    }
    let reducer = DwordDivisor::new(m)?;
    let reduce = |x: u128| -> u64 {
        let dw = DWord::from_parts((x >> 64) as u64, x as u64);
        reducer
            .div_rem(dw)
            .expect("operands below m^2 keep the quotient in range")
            .1
    };
    let mut result = 1u64;
    let mut b = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = reduce(result as u128 * b as u128);
        }
        b = reduce(b as u128 * b as u128);
        exp >>= 1;
    }
    Ok(result)
}

/// Baseline modular exponentiation with hardware `%` on the wide products.
pub fn mod_pow_baseline(base: u64, mut exp: u64, m: u64) -> Result<u64, DivisorError> {
    if m == 0 {
        return Err(DivisorError::Zero);
    }
    if m == 1 {
        return Ok(0);
    }
    let mut result = 1u64;
    let mut b = base % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = ((result as u128 * b as u128) % m as u128) as u64;
        }
        b = ((b as u128 * b as u128) % m as u128) as u64;
        exp >>= 1;
    }
    Ok(result)
}

/// Trial-division primality with the candidate hoisted as the *dividend*
/// and each small divisor precomputed once across many candidates:
/// [`TrialDivider`] holds reciprocals for all odd divisors up to a bound.
#[derive(Debug, Clone)]
pub struct TrialDivider {
    divisors: Vec<InvariantUnsignedDivisor<u64>>,
}

impl TrialDivider {
    /// Precomputes reciprocals for 2 and all odd numbers `3..=bound`.
    pub fn new(bound: u64) -> Self {
        let mut divisors = vec![InvariantUnsignedDivisor::new(2).expect("2 != 0")];
        let mut d = 3u64;
        while d <= bound {
            divisors.push(InvariantUnsignedDivisor::new(d).expect("odd d != 0"));
            d += 2;
        }
        TrialDivider { divisors }
    }

    /// Tests primality of `n` by trial division with magic reciprocals.
    /// Exact for `n <= bound^2` (where `bound` was given to [`new`]);
    /// larger `n` may get a false positive if no precomputed divisor
    /// reaches `sqrt(n)`.
    ///
    /// [`new`]: TrialDivider::new
    pub fn is_prime(&self, n: u64) -> bool {
        if n < 2 {
            return false;
        }
        for div in &self.divisors {
            let d = div.divisor();
            if d * d > n {
                return true;
            }
            if div.remainder(n) == 0 {
                return n == d;
            }
        }
        true
    }

    /// Baseline: the same loop with hardware `%`.
    pub fn is_prime_baseline(&self, n: u64) -> bool {
        if n < 2 {
            return false;
        }
        for div in &self.divisors {
            let d = div.divisor();
            if d * d > n {
                return true;
            }
            if n % d == 0 {
                return n == d;
            }
        }
        true
    }
}

/// Euclidean GCD — the paper's counterexample: "the algorithms are
/// ineffective when a divisor is not invariant, such as in the Euclidean
/// GCD algorithm." Building a reciprocal per iteration costs more than
/// the division it replaces; this function (and its bench) quantifies
/// that.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::{gcd, gcd_with_per_iteration_reciprocal};
///
/// assert_eq!(gcd(48, 18), 6);
/// assert_eq!(gcd_with_per_iteration_reciprocal(48, 18), 6);
/// ```
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// GCD computing each remainder through a freshly-built magic divisor —
/// deliberately pessimal, to measure the §1 caveat.
pub fn gcd_with_per_iteration_reciprocal(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let div = InvariantUnsignedDivisor::new(b).expect("b != 0 in loop");
        let r = div.remainder(a);
        a = b;
        b = r;
    }
    a
}

/// Counts primes in `[2, limit)` — the number-theory bench kernel.
pub fn count_primes(limit: u64, magic: bool) -> usize {
    let bound = (limit as f64).sqrt() as u64 + 1;
    let td = TrialDivider::new(bound);
    (2..limit)
        .filter(|&n| {
            if magic {
                td.is_prime(n)
            } else {
                td.is_prime_baseline(n)
            }
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mod_pow_matches_baseline() {
        let cases = [
            (2u64, 10, 1000),
            (3, 0, 7),
            (0, 5, 7),
            (123456789, 987654321, 1_000_000_007),
            (u64::MAX, 3, u64::MAX - 1),
            (5, 1, 1),
        ];
        for (b, e, m) in cases {
            assert_eq!(
                mod_pow(b, e, m),
                mod_pow_baseline(b, e, m),
                "{b}^{e} mod {m}"
            );
        }
        assert!(mod_pow(2, 2, 0).is_err());
    }

    #[test]
    fn mod_pow_randomized() {
        let mut s = 7u64;
        for _ in 0..500 {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = s;
            let e = s.rotate_left(17) & 0xffff;
            let m = (s.rotate_left(33) | 1).max(2);
            assert_eq!(mod_pow(b, e, m), mod_pow_baseline(b, e, m));
        }
    }

    #[test]
    fn fermat_little_theorem() {
        for p in [97u64, 1009, 1_000_000_007] {
            for a in [2u64, 3, 5, 123456] {
                assert_eq!(mod_pow(a, p - 1, p).unwrap(), 1, "a={a} p={p}");
            }
        }
    }

    #[test]
    fn primality_first_thousand() {
        let td = TrialDivider::new(40);
        let known: Vec<u64> = vec![
            2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83,
            89, 97,
        ];
        for n in 0..100u64 {
            assert_eq!(td.is_prime(n), known.contains(&n), "n={n}");
            assert_eq!(td.is_prime_baseline(n), known.contains(&n), "n={n}");
        }
    }

    #[test]
    fn prime_counts_agree() {
        assert_eq!(count_primes(10_000, true), count_primes(10_000, false));
        assert_eq!(count_primes(10_000, true), 1229); // pi(10^4)
    }

    #[test]
    fn gcd_variants_agree() {
        let cases = [
            (48u64, 18u64),
            (0, 5),
            (5, 0),
            (17, 17),
            (u64::MAX, 2),
            (270, 192),
        ];
        for (a, b) in cases {
            assert_eq!(
                gcd(a, b),
                gcd_with_per_iteration_reciprocal(a, b),
                "{a},{b}"
            );
        }
    }
}
