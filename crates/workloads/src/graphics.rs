//! Graphics kernels — §1: "integer division is used heavily in ...
//! graphics codes."
//!
//! Two classics whose inner loops divide by invariants:
//!
//! * **alpha blending**: `out = (src*a + dst*(255-a)) / 255` — dividing by
//!   255 (not 256!) per channel per pixel;
//! * **fixed-point perspective projection**: screen coordinates divide by
//!   a per-scanline-invariant depth, `x' = x * scale / z`.

use magicdiv::{DivisorError, InvariantUnsignedDivisor, UnsignedDivisor};

/// Blends two 8-bit channels with alpha `a` (0..=255), rounding as
/// `(src*a + dst*(255-a) + 127) / 255` — the division-by-255 done with a
/// magic multiplier.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::blend_channel;
///
/// assert_eq!(blend_channel(200, 100, 255), 200); // fully src
/// assert_eq!(blend_channel(200, 100, 0), 100);   // fully dst
/// ```
pub fn blend_channel(src: u8, dst: u8, a: u8) -> u8 {
    static BY255: std::sync::OnceLock<UnsignedDivisor<u32>> = std::sync::OnceLock::new();
    let by255 = BY255.get_or_init(|| UnsignedDivisor::new(255).expect("255 != 0"));
    let num = src as u32 * a as u32 + dst as u32 * (255 - a as u32) + 127;
    by255.divide(num) as u8
}

/// The same blend with hardware `%`-family division (baseline).
pub fn blend_channel_baseline(src: u8, dst: u8, a: u8) -> u8 {
    let num = src as u32 * a as u32 + dst as u32 * (255 - a as u32) + 127;
    (num / 255) as u8
}

/// Blends two RGBA8888 pixel buffers in place (`dst = blend(src, dst)`),
/// with the `/255` either via the reciprocal or via hardware division.
///
/// # Panics
///
/// Panics when the buffers' lengths differ or are not multiples of 4.
pub fn blend_buffers(src: &[u8], dst: &mut [u8], a: u8, magic: bool) {
    assert_eq!(src.len(), dst.len(), "buffer length mismatch");
    assert_eq!(src.len() % 4, 0, "RGBA buffers are multiples of 4 bytes");
    if magic {
        // Hoist the divisor out of the pixel loop (the whole point).
        let by255 = UnsignedDivisor::<u32>::new(255).expect("255 != 0");
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            let num = *s as u32 * a as u32 + *d as u32 * (255 - a as u32) + 127;
            *d = by255.divide(num) as u8;
        }
    } else {
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d = blend_channel_baseline(*s, *d, a);
        }
    }
}

/// Perspective projection of fixed-point points: `(x, y)` each scaled by
/// `focal / z`, where `z` is invariant for a batch (a scanline or a
/// z-sorted mesh strip) — the run-time-invariant case of §4.
#[derive(Debug, Clone, Copy)]
pub struct PerspectiveDivider {
    focal: u64,
    z: InvariantUnsignedDivisor<u64>,
}

impl PerspectiveDivider {
    /// Builds the projector for depth `z` and focal length `focal`.
    ///
    /// # Errors
    ///
    /// Returns [`DivisorError::Zero`] when `z == 0` (a point on the
    /// camera plane has no projection).
    pub fn new(focal: u64, z: u64) -> Result<Self, DivisorError> {
        Ok(PerspectiveDivider {
            focal,
            z: InvariantUnsignedDivisor::new(z)?,
        })
    }

    /// Projects one coordinate: `x * focal / z`.
    #[inline]
    pub fn project(&self, x: u64) -> u64 {
        self.z.divide(x.wrapping_mul(self.focal))
    }

    /// Baseline with hardware division.
    #[inline]
    pub fn project_baseline(&self, x: u64) -> u64 {
        x.wrapping_mul(self.focal) / self.z.divisor()
    }
}

/// Bench kernel: blends `pixels` RGBA pixels and projects them, returning
/// a checksum.
pub fn graphics_kernel(pixels: usize, magic: bool) -> u64 {
    let src: Vec<u8> = (0..pixels * 4).map(|i| (i * 31 + 7) as u8).collect();
    let mut dst: Vec<u8> = (0..pixels * 4).map(|i| (i * 17 + 3) as u8).collect();
    blend_buffers(&src, &mut dst, 170, magic);
    let proj = PerspectiveDivider::new(256, 37).expect("z > 0");
    let mut sum = 0u64;
    for (i, &b) in dst.iter().enumerate() {
        let p = if magic {
            proj.project(b as u64 + i as u64)
        } else {
            proj.project_baseline(b as u64 + i as u64)
        };
        sum = sum.wrapping_add(p);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_matches_baseline_exhaustively() {
        for src in (0u16..=255).step_by(5) {
            for dst in (0u16..=255).step_by(7) {
                for a in 0u16..=255 {
                    assert_eq!(
                        blend_channel(src as u8, dst as u8, a as u8),
                        blend_channel_baseline(src as u8, dst as u8, a as u8),
                        "src={src} dst={dst} a={a}"
                    );
                }
            }
        }
    }

    #[test]
    fn blend_endpoints() {
        for x in [0u8, 1, 127, 128, 254, 255] {
            assert_eq!(blend_channel(x, 0, 255), x);
            assert_eq!(blend_channel(0, x, 0), x);
            assert_eq!(blend_channel(x, x, 128), x);
        }
    }

    #[test]
    fn projection_matches_baseline() {
        for z in [1u64, 2, 37, 255, 1_000_003] {
            let p = PerspectiveDivider::new(65_536, z).unwrap();
            for x in [0u64, 1, 320, 479, 1_000_000, u32::MAX as u64] {
                assert_eq!(p.project(x), p.project_baseline(x), "z={z} x={x}");
            }
        }
    }

    #[test]
    fn kernels_agree() {
        assert_eq!(graphics_kernel(1000, true), graphics_kernel(1000, false));
    }

    #[test]
    fn zero_depth_rejected() {
        assert!(PerspectiveDivider::new(256, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_buffers_panic() {
        let src = [0u8; 8];
        let mut dst = [0u8; 4];
        blend_buffers(&src, &mut dst, 128, true);
    }
}
