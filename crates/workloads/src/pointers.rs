//! Pointer subtraction — §9's motivating case for exact division: "an
//! example occurs in C when subtracting two pointers. Their numerical
//! difference is divided by the object size. The object size is a
//! compile-time constant" and the division is known to be exact.

use magicdiv::{DivisorError, ExactSignedDivisor};

/// Element-index arithmetic over records of a fixed byte size, computing
/// `(p - q) / size_of::<T>()` the way a compiler does — with the §9 exact
/// division (one `MULL`, one shift) instead of a full divide.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::PointerDiff;
///
/// // Records of 24 bytes (a non-power-of-two size: the interesting case).
/// let pd = PointerDiff::new(24)?;
/// assert_eq!(pd.element_offset(24 * 17, 24 * 3), 14);
/// assert_eq!(pd.element_offset(24 * 3, 24 * 17), -14);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PointerDiff {
    size: i64,
    exact: ExactSignedDivisor<i64>,
}

impl PointerDiff {
    /// Builds the divider for objects of `size` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`DivisorError::Zero`] when `size == 0` (zero-sized types
    /// don't support pointer arithmetic in C either).
    pub fn new(size: i64) -> Result<Self, DivisorError> {
        Ok(PointerDiff {
            size,
            exact: ExactSignedDivisor::new(size)?,
        })
    }

    /// The object size in bytes.
    pub fn object_size(&self) -> i64 {
        self.size
    }

    /// `(p - q) / size` for byte addresses `p`, `q` that point into the
    /// same array (so the difference is an exact multiple of the size).
    ///
    /// # Panics
    ///
    /// Debug builds panic when the difference is not a multiple of the
    /// object size (i.e. the pointers don't belong to the same array).
    #[inline]
    pub fn element_offset(&self, p: i64, q: i64) -> i64 {
        self.exact.divide_exact(p.wrapping_sub(q))
    }

    /// Baseline with hardware division.
    #[inline]
    pub fn element_offset_baseline(&self, p: i64, q: i64) -> i64 {
        p.wrapping_sub(q) / self.size
    }
}

/// The bench kernel: walks two index sequences over a simulated array of
/// `n` records and sums element offsets.
pub fn pointer_diff_kernel(size: i64, n: i64, magic: bool) -> i64 {
    let pd = PointerDiff::new(size).expect("size > 0");
    let base = 0x1000i64;
    let mut sum = 0i64;
    for i in 0..n {
        let p = base + size * ((i * 7) % n);
        let q = base + size * ((i * 13) % n);
        sum = sum.wrapping_add(if magic {
            pd.element_offset(p, q)
        } else {
            pd.element_offset_baseline(p, q)
        });
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_small_sizes() {
        for size in 1i64..=64 {
            let pd = PointerDiff::new(size).unwrap();
            for a in -100i64..=100 {
                for b in [-50i64, 0, 37] {
                    let (p, q) = (a * size, b * size);
                    assert_eq!(pd.element_offset(p, q), a - b, "size={size} a={a} b={b}");
                    assert_eq!(
                        pd.element_offset_baseline(p, q),
                        a - b,
                        "size={size} a={a} b={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_agree() {
        for size in [1i64, 3, 8, 24, 56, 104] {
            assert_eq!(
                pointer_diff_kernel(size, 1000, true),
                pointer_diff_kernel(size, 1000, false),
                "size={size}"
            );
        }
    }

    #[test]
    fn zero_size_rejected() {
        assert!(PointerDiff::new(0).is_err());
    }
}
