//! Hash-table workloads with prime modulus — the §11 note that "some
//! benchmarks that involve hashing show improvements up to about 30%".
//!
//! Classic hash tables size their bucket array to a prime and reduce the
//! hash with `h % prime`; the prime is fixed at table-construction time —
//! a textbook run-time invariant divisor. [`PrimeHashTable`] hoists the
//! reciprocal into the table header.

use magicdiv::{DivisorError, InvariantUnsignedDivisor, UnsignedDivisor};

/// Reduction strategy for bucket indices (the benched design choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reduction {
    /// Hardware `%` per probe (baseline).
    HardwareRemainder,
    /// Magic-multiplier remainder via the hoisted invariant divisor.
    MagicRemainder,
    /// Direct remainder from the fraction's low bits (LKK Thm 1): no
    /// quotient is ever formed on the probe path.
    DirectRemainder,
}

/// An open-addressing (linear probing) hash table with a prime bucket
/// count, parameterized over how `hash % prime` is computed.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::{PrimeHashTable, Reduction};
///
/// let mut t = PrimeHashTable::new(1009, Reduction::MagicRemainder)?;
/// t.insert(42, 4200);
/// t.insert(43, 4300);
/// assert_eq!(t.get(42), Some(4200));
/// assert_eq!(t.get(999_999), None);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PrimeHashTable {
    slots: Vec<Option<(u64, u64)>>,
    prime: u64,
    divisor: InvariantUnsignedDivisor<u64>,
    direct: UnsignedDivisor<u64>,
    reduction: Reduction,
    len: usize,
}

impl PrimeHashTable {
    /// Creates a table with `prime` buckets.
    ///
    /// # Errors
    ///
    /// Returns [`DivisorError::Zero`] when `prime == 0`.
    pub fn new(prime: u64, reduction: Reduction) -> Result<Self, DivisorError> {
        Ok(PrimeHashTable {
            slots: vec![None; prime as usize],
            prime,
            divisor: InvariantUnsignedDivisor::new(prime)?,
            direct: UnsignedDivisor::new_direct_rem(prime)?,
            reduction,
            len: 0,
        })
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mix(key: u64) -> u64 {
        // Fibonacci hashing spread before the modulus.
        key.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31)
    }

    #[inline]
    fn bucket(&self, key: u64) -> usize {
        let h = Self::mix(key);
        let r = match self.reduction {
            Reduction::HardwareRemainder => h % self.prime,
            Reduction::MagicRemainder => self.divisor.remainder(h),
            Reduction::DirectRemainder => self.direct.remainder(h),
        };
        r as usize
    }

    /// Inserts (or overwrites) `key -> value`; returns the previous value.
    ///
    /// # Panics
    ///
    /// Panics when the table is full (the benchmarks keep load < 0.7).
    pub fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
        assert!(self.len < self.slots.len(), "hash table full");
        let mut i = self.bucket(key);
        loop {
            match self.slots[i] {
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, old)) if k == key => {
                    self.slots[i] = Some((key, value));
                    return Some(old);
                }
                _ => i = if i + 1 == self.slots.len() { 0 } else { i + 1 },
            }
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: u64) -> Option<u64> {
        let mut i = self.bucket(key);
        let mut probes = 0;
        loop {
            match self.slots[i] {
                None => return None,
                Some((k, v)) if k == key => return Some(v),
                _ => {
                    probes += 1;
                    if probes > self.slots.len() {
                        return None;
                    }
                    i = if i + 1 == self.slots.len() { 0 } else { i + 1 };
                }
            }
        }
    }
}

/// The bench kernel: builds a table of `n` entries and performs `lookups`
/// queries (half hits, half misses), returning a checksum.
pub fn hashing_kernel(prime: u64, n: u64, lookups: u64, reduction: Reduction) -> u64 {
    let mut table = PrimeHashTable::new(prime, reduction).expect("prime > 0");
    for k in 0..n {
        table.insert(k.wrapping_mul(2_654_435_769), k);
    }
    let mut sum = 0u64;
    for q in 0..lookups {
        let key = if q % 2 == 0 {
            (q % n).wrapping_mul(2_654_435_769) // hit
        } else {
            q.wrapping_mul(0xdead_beef).wrapping_add(1) // likely miss
        };
        sum = sum.wrapping_add(table.get(key).unwrap_or(0)).rotate_left(1);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_reductions_behave_identically() {
        let mut magic = PrimeHashTable::new(257, Reduction::MagicRemainder).unwrap();
        let mut hw = PrimeHashTable::new(257, Reduction::HardwareRemainder).unwrap();
        for k in 0..150u64 {
            assert_eq!(magic.insert(k * 7, k), hw.insert(k * 7, k));
        }
        for k in 0..300u64 {
            assert_eq!(magic.get(k * 7), hw.get(k * 7), "k={k}");
        }
        assert_eq!(magic.len(), hw.len());
    }

    #[test]
    fn insert_get_update() {
        let mut t = PrimeHashTable::new(101, Reduction::MagicRemainder).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.insert(1, 10), None);
        assert_eq!(t.insert(1, 11), Some(10));
        assert_eq!(t.get(1), Some(11));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn collisions_probe_linearly() {
        // Keys engineered to collide modulo a tiny prime.
        let mut t = PrimeHashTable::new(5, Reduction::MagicRemainder).unwrap();
        for k in 0..4u64 {
            t.insert(k, k + 100);
        }
        for k in 0..4u64 {
            assert_eq!(t.get(k), Some(k + 100));
        }
    }

    #[test]
    fn kernel_checksums_match_across_reductions() {
        let a = hashing_kernel(4093, 2000, 5000, Reduction::MagicRemainder);
        let b = hashing_kernel(4093, 2000, 5000, Reduction::HardwareRemainder);
        let c = hashing_kernel(4093, 2000, 5000, Reduction::DirectRemainder);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn direct_reduction_matches_hardware_bucketing() {
        let mut direct = PrimeHashTable::new(257, Reduction::DirectRemainder).unwrap();
        let mut hw = PrimeHashTable::new(257, Reduction::HardwareRemainder).unwrap();
        for k in 0..150u64 {
            assert_eq!(direct.insert(k * 11, k), hw.insert(k * 11, k));
        }
        for k in 0..300u64 {
            assert_eq!(direct.get(k * 11), hw.get(k * 11), "k={k}");
        }
    }

    #[test]
    #[should_panic(expected = "hash table full")]
    fn full_table_panics() {
        let mut t = PrimeHashTable::new(3, Reduction::MagicRemainder).unwrap();
        for k in 0..4u64 {
            t.insert(k, k);
        }
    }
}
