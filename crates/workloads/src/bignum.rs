//! Multiple-precision arithmetic — the §8 use case.
//!
//! "One primitive operation for multiple precision arithmetic [Knuth] is
//! the division of a udword by a uword, obtaining uword quotient and
//! remainder." Printing a big number in decimal performs exactly this in
//! a loop: divide the limb array by 10^19 (the largest power of ten in a
//! u64), limb by limb, each step a 128÷64 division with an invariant
//! divisor — Figure 8.1's home turf.

use magicdiv::{DWord, DwordDivisor};

/// Largest power of ten fitting in a `u64`: `10^19`.
const CHUNK: u64 = 10_000_000_000_000_000_000;
const CHUNK_DIGITS: usize = 19;

/// An unsigned multiple-precision integer (little-endian `u64` limbs).
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::BigUint;
///
/// let two_pow_200 = BigUint::from_pow2(200);
/// assert_eq!(
///     two_pow_200.to_decimal_magic(),
///     "1606938044258990275541962092341162602522202993782792835301376"
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zero limbs (canonical form).
    limbs: Vec<u64>,
}

impl BigUint {
    /// Builds from little-endian limbs (trailing zeros trimmed).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Builds from a `u128`.
    pub fn from_u128(x: u128) -> Self {
        BigUint::from_limbs(vec![x as u64, (x >> 64) as u64])
    }

    /// The power `2^k`.
    pub fn from_pow2(k: u32) -> Self {
        let mut limbs = vec![0u64; (k / 64) as usize + 1];
        let last = limbs.len() - 1;
        limbs[last] = 1u64 << (k % 64);
        BigUint { limbs }
    }

    /// `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of limbs (zero for the value zero).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Divides in place by a single nonzero limb using the §8 invariant
    /// divider, returning the remainder.
    ///
    /// Each step divides `(rem, limb)` — a udword — by `d`; the quotient
    /// is known to fit because `rem < d`.
    ///
    /// # Panics
    ///
    /// Panics when `d == 0`.
    pub fn divmod_limb_magic(&mut self, divider: &DwordDivisor<u64>) -> u64 {
        let mut rem = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let (q, r) = divider
                .div_rem(DWord::from_parts(rem, *limb))
                .expect("rem < d keeps the quotient in one limb");
            *limb = q;
            rem = r;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem
    }

    /// Baseline: the same long division with native `u128` division.
    ///
    /// # Panics
    ///
    /// Panics when `d == 0`.
    pub fn divmod_limb_baseline(&mut self, d: u64) -> u64 {
        assert!(d != 0, "division by zero");
        let mut rem = 0u64;
        for limb in self.limbs.iter_mut().rev() {
            let wide = ((rem as u128) << 64) | *limb as u128;
            *limb = (wide / d as u128) as u64;
            rem = (wide % d as u128) as u64;
        }
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
        rem
    }

    /// Decimal string via repeated §8 division by `10^19`.
    pub fn to_decimal_magic(&self) -> String {
        let divider = DwordDivisor::new(CHUNK).expect("10^19 != 0");
        let mut work = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !work.is_zero() {
            chunks.push(work.divmod_limb_magic(&divider));
        }
        Self::chunks_to_string(&chunks)
    }

    /// Decimal string via native `u128` long division (baseline).
    pub fn to_decimal_baseline(&self) -> String {
        let mut work = self.clone();
        let mut chunks: Vec<u64> = Vec::new();
        while !work.is_zero() {
            chunks.push(work.divmod_limb_baseline(CHUNK));
        }
        Self::chunks_to_string(&chunks)
    }

    fn chunks_to_string(chunks: &[u64]) -> String {
        match chunks.split_last() {
            None => "0".to_string(),
            Some((most, rest)) => {
                let mut s = most.to_string();
                for c in rest.iter().rev() {
                    s.push_str(&format!("{c:0width$}", width = CHUNK_DIGITS));
                }
                s
            }
        }
    }
}

/// Bench kernel: prints a `limbs`-limb pseudorandom number in decimal,
/// returning a digit checksum.
pub fn bignum_kernel(limbs: usize, magic: bool) -> u64 {
    let mut state = 0x243F_6A88_85A3_08D3u64;
    let raw: Vec<u64> = (0..limbs)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        })
        .collect();
    let n = BigUint::from_limbs(raw);
    let s = if magic {
        n.to_decimal_magic()
    } else {
        n.to_decimal_baseline()
    };
    s.bytes().map(u64::from).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u128_values_match_display() {
        for x in [
            0u128,
            1,
            9,
            10,
            CHUNK as u128 - 1,
            CHUNK as u128,
            CHUNK as u128 + 1,
            u64::MAX as u128,
            u128::MAX,
            12345678901234567890123456789012345678,
        ] {
            let b = BigUint::from_u128(x);
            assert_eq!(b.to_decimal_magic(), x.to_string(), "{x}");
            assert_eq!(b.to_decimal_baseline(), x.to_string(), "{x}");
        }
    }

    #[test]
    fn powers_of_two_known_values() {
        assert_eq!(BigUint::from_pow2(0).to_decimal_magic(), "1");
        assert_eq!(
            BigUint::from_pow2(64).to_decimal_magic(),
            "18446744073709551616"
        );
        assert_eq!(
            BigUint::from_pow2(128).to_decimal_magic(),
            "340282366920938463463374607431768211456"
        );
        assert_eq!(
            BigUint::from_pow2(256).to_decimal_magic(),
            "115792089237316195423570985008687907853269984665640564039457584007913129639936"
        );
    }

    #[test]
    fn magic_and_baseline_agree_on_random_numbers() {
        let mut state = 99u64;
        for limbs in [1usize, 2, 3, 5, 8] {
            for _ in 0..20 {
                let raw: Vec<u64> = (0..limbs)
                    .map(|_| {
                        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                        state
                    })
                    .collect();
                let n = BigUint::from_limbs(raw);
                assert_eq!(n.to_decimal_magic(), n.to_decimal_baseline());
            }
        }
    }

    #[test]
    fn divmod_reduces_limb_count_eventually() {
        let mut n = BigUint::from_pow2(192);
        let divider = DwordDivisor::new(CHUNK).unwrap();
        let before = n.limb_count();
        for _ in 0..2 {
            n.divmod_limb_magic(&divider);
        }
        assert!(n.limb_count() < before);
    }

    #[test]
    fn kernel_checksums_agree() {
        assert_eq!(bignum_kernel(16, true), bignum_kernel(16, false));
    }

    #[test]
    fn zero_prints_as_zero() {
        assert_eq!(BigUint::from_limbs(vec![]).to_decimal_magic(), "0");
        assert_eq!(BigUint::from_limbs(vec![0, 0]).to_decimal_baseline(), "0");
    }
}
