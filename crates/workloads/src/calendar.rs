//! Calendar and time-of-day conversions — everyday division-by-constant
//! code (`/60`, `/3600`, `/86400`, and the Gregorian `/146097`, `/1461`),
//! including *floor* divisions on dates before the epoch, exercising the
//! §6 machinery on a real algorithm.
//!
//! The civil-date conversion is Howard Hinnant's `civil_from_days`
//! (public-domain algorithm), written once with hardware division and
//! once with precomputed divisors.

use magicdiv::{ExactUnsignedDivisor, FloorDivisor, UnsignedDivisor};

/// A civil (proleptic Gregorian) date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CivilDate {
    /// Year (can be negative).
    pub year: i64,
    /// Month, 1..=12.
    pub month: u8,
    /// Day of month, 1..=31.
    pub day: u8,
}

/// Splits a second count into `(hours, minutes, seconds)` with magic
/// divisors.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::hms;
///
/// assert_eq!(hms(3_661), (1, 1, 1));
/// assert_eq!(hms(86_399), (23, 59, 59));
/// ```
pub fn hms(seconds_of_day: u32) -> (u32, u32, u32) {
    static BY60: std::sync::OnceLock<UnsignedDivisor<u32>> = std::sync::OnceLock::new();
    static BY3600: std::sync::OnceLock<UnsignedDivisor<u32>> = std::sync::OnceLock::new();
    let by60 = BY60.get_or_init(|| UnsignedDivisor::new(60).expect("60 != 0"));
    let by3600 = BY3600.get_or_init(|| UnsignedDivisor::new(3600).expect("3600 != 0"));
    let (h, rem) = by3600.div_rem(seconds_of_day);
    let (m, s) = by60.div_rem(rem);
    (h, m, s)
}

/// Baseline `hms` with hardware division.
pub fn hms_baseline(seconds_of_day: u32) -> (u32, u32, u32) {
    (
        seconds_of_day / 3600,
        seconds_of_day % 3600 / 60,
        seconds_of_day % 60,
    )
}

/// Converts days since 1970-01-01 to a civil date, all divisions done
/// with precomputed divisors ([`FloorDivisor`] for the pre-epoch floor
/// divisions, [`UnsignedDivisor`] for the rest).
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::{civil_from_days, CivilDate};
///
/// assert_eq!(civil_from_days(0), CivilDate { year: 1970, month: 1, day: 1 });
/// assert_eq!(civil_from_days(19_723), CivilDate { year: 2024, month: 1, day: 1 });
/// assert_eq!(civil_from_days(-1), CivilDate { year: 1969, month: 12, day: 31 });
/// ```
pub fn civil_from_days(days_since_epoch: i64) -> CivilDate {
    struct Divs {
        by146097_floor: FloorDivisor<i64>,
        by1460: UnsignedDivisor<u64>,
        by36524: UnsignedDivisor<u64>,
        by146096: UnsignedDivisor<u64>,
        by365: UnsignedDivisor<u64>,
        by153: UnsignedDivisor<u64>,
        by5: UnsignedDivisor<u64>,
        by4: UnsignedDivisor<u64>,
        by100: UnsignedDivisor<u64>,
    }
    static DIVS: std::sync::OnceLock<Divs> = std::sync::OnceLock::new();
    let dv = DIVS.get_or_init(|| Divs {
        by146097_floor: FloorDivisor::new(146_097).expect("nonzero"),
        by1460: UnsignedDivisor::new(1460).expect("nonzero"),
        by36524: UnsignedDivisor::new(36_524).expect("nonzero"),
        by146096: UnsignedDivisor::new(146_096).expect("nonzero"),
        by365: UnsignedDivisor::new(365).expect("nonzero"),
        by153: UnsignedDivisor::new(153).expect("nonzero"),
        by5: UnsignedDivisor::new(5).expect("nonzero"),
        by4: UnsignedDivisor::new(4).expect("nonzero"),
        by100: UnsignedDivisor::new(100).expect("nonzero"),
    });

    let z = days_since_epoch + 719_468;
    // era = floor(z / 146097): a *floor* division — dates before 0000-03-01
    // have negative z.
    let era = dv.by146097_floor.divide(z);
    let doe = (z - era * 146_097) as u64; // day of era, 0..=146096
                                          // yoe = (doe - doe/1460 + doe/36524 - doe/146096) / 365
    let yoe = dv
        .by365
        .divide(doe - dv.by1460.divide(doe) + dv.by36524.divide(doe) - dv.by146096.divide(doe));
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + dv.by4.divide(yoe) - dv.by100.divide(yoe));
    let mp = dv.by153.divide(5 * doy + 2);
    let d = (doy - dv.by5.divide(153 * mp + 2) + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    let year = if m <= 2 { y + 1 } else { y };
    CivilDate {
        year,
        month: m,
        day: d,
    }
}

/// Baseline `civil_from_days` with hardware division (Hinnant's original
/// formulation).
pub fn civil_from_days_baseline(days_since_epoch: i64) -> CivilDate {
    let z = days_since_epoch + 719_468;
    let era = z.div_euclid(146_097);
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u8;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u8;
    CivilDate {
        year: if m <= 2 { y + 1 } else { y },
        month: m,
        day: d,
    }
}

/// `true` when `year` is a Gregorian leap year, with every divisibility
/// test strength-reduced to the §9 inverse-rotate — no remainder is ever
/// computed on this path.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::is_leap_year;
///
/// assert!(is_leap_year(2000));
/// assert!(!is_leap_year(1900));
/// assert!(is_leap_year(2024));
/// assert!(!is_leap_year(2025));
/// ```
pub fn is_leap_year(year: u64) -> bool {
    struct Divs {
        by4: ExactUnsignedDivisor<u64>,
        by100: ExactUnsignedDivisor<u64>,
        by400: ExactUnsignedDivisor<u64>,
    }
    static DIVS: std::sync::OnceLock<Divs> = std::sync::OnceLock::new();
    let dv = DIVS.get_or_init(|| Divs {
        by4: ExactUnsignedDivisor::new(4).expect("nonzero"),
        by100: ExactUnsignedDivisor::new(100).expect("nonzero"),
        by400: ExactUnsignedDivisor::new(400).expect("nonzero"),
    });
    dv.by4.divides(year) && (!dv.by100.divides(year) || dv.by400.divides(year))
}

/// Baseline [`is_leap_year`] with hardware remainders.
pub fn is_leap_year_baseline(year: u64) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Bench kernel: counts leap years in `start..start + count`, with the
/// divisibility tests either strength-reduced (`magic`) or as hardware
/// remainders.
pub fn leap_year_kernel(start: u64, count: u64, magic: bool) -> u64 {
    let mut leaps = 0u64;
    for year in start..start.saturating_add(count) {
        let leap = if magic {
            is_leap_year(year)
        } else {
            is_leap_year_baseline(year)
        };
        leaps += u64::from(leap);
    }
    leaps
}

/// Bench kernel: converts `count` consecutive days, returning a checksum.
pub fn calendar_kernel(start_day: i64, count: i64, magic: bool) -> i64 {
    let mut sum = 0i64;
    for i in 0..count {
        let d = if magic {
            civil_from_days(start_day + i)
        } else {
            civil_from_days_baseline(start_day + i)
        };
        sum = sum
            .wrapping_add(d.year)
            .wrapping_add(d.month as i64)
            .wrapping_mul(31)
            .wrapping_add(d.day as i64);
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hms_matches_baseline_exhaustively() {
        for s in 0..86_400 {
            assert_eq!(hms(s), hms_baseline(s), "{s}");
        }
    }

    #[test]
    fn known_dates() {
        assert_eq!(
            civil_from_days(0),
            CivilDate {
                year: 1970,
                month: 1,
                day: 1
            }
        );
        assert_eq!(
            civil_from_days(11_016),
            CivilDate {
                year: 2000,
                month: 2,
                day: 29
            }
        );
        assert_eq!(
            civil_from_days(-719_468),
            CivilDate {
                year: 0,
                month: 3,
                day: 1
            }
        );
        assert_eq!(
            civil_from_days(20_270),
            CivilDate {
                year: 2025,
                month: 7,
                day: 1
            }
        );
    }

    #[test]
    fn magic_matches_baseline_over_forty_thousand_years() {
        // Every day from ~year -400 to ~year 2400 in big strides, plus a
        // dense window around the epoch and around era boundaries.
        let mut day = -870_000i64;
        while day < 160_000 {
            assert_eq!(civil_from_days(day), civil_from_days_baseline(day), "{day}");
            day += 97;
        }
        for day in -1500..1500 {
            assert_eq!(civil_from_days(day), civil_from_days_baseline(day), "{day}");
        }
        for base in [-146_097i64 - 719_468, -719_468, 146_097 - 719_468] {
            for delta in -3..3 {
                let day = base + delta;
                assert_eq!(civil_from_days(day), civil_from_days_baseline(day), "{day}");
            }
        }
    }

    #[test]
    fn round_trip_through_day_counting() {
        // Dates advance by exactly one day per day.
        let mut prev = civil_from_days(-1000);
        for day in -999..1000 {
            let cur = civil_from_days(day);
            assert_ne!(cur, prev, "{day}");
            prev = cur;
        }
    }

    #[test]
    fn kernel_checksums_agree() {
        assert_eq!(
            calendar_kernel(-10_000, 5_000, true),
            calendar_kernel(-10_000, 5_000, false)
        );
    }

    #[test]
    fn leap_year_rules_agree_exhaustively_for_four_centuries() {
        for year in 1600..2000 {
            assert_eq!(is_leap_year(year), is_leap_year_baseline(year), "{year}");
        }
        // 97 leap years per 400-year Gregorian cycle.
        assert_eq!(leap_year_kernel(1600, 400, true), 97);
        assert_eq!(
            leap_year_kernel(1600, 400, true),
            leap_year_kernel(1600, 400, false)
        );
    }
}
