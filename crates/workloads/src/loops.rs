//! Loop-count computation — §1: "compilers generate integer divisions to
//! compute loop counts", plus the §9 strength-reduced divisibility loop
//! ("if ((i % 100) == 0)" with no multiply or divide).

use magicdiv::{
    ceil_div_via_trunc, DivisibilityScanner, DivisorError, ExactUnsignedDivisor, UnsignedDivisor,
};

/// Trip count of `for (i = start; i < end; i += step)` for a run-time
/// invariant `step` — the division a compiler emits for loop
/// normalization: `ceil((end - start) / step)`.
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `step == 0`.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::trip_count;
///
/// assert_eq!(trip_count(0, 10, 3)?, 4);  // 0, 3, 6, 9
/// assert_eq!(trip_count(10, 10, 3)?, 0);
/// assert_eq!(trip_count(5, 6, 100)?, 1);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn trip_count(start: u64, end: u64, step: u64) -> Result<u64, DivisorError> {
    if step == 0 {
        return Err(DivisorError::Zero);
    }
    if end <= start {
        return Ok(0);
    }
    let span = end - start;
    // ceil(span / step) = (span - 1) / step + 1 for span > 0.
    let div = UnsignedDivisor::new(step)?;
    Ok(div.divide(span - 1) + 1)
}

/// Signed trip count via the §6 ceiling identity (used when the compiler
/// cannot prove the span nonnegative).
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `step == 0`.
pub fn trip_count_signed(start: i64, end: i64, step: i64) -> Result<i64, DivisorError> {
    if step == 0 {
        return Err(DivisorError::Zero);
    }
    let span = end.wrapping_sub(start);
    if (step > 0 && span <= 0) || (step < 0 && span >= 0) {
        return Ok(0);
    }
    Ok(ceil_div_via_trunc(span, step))
}

/// The paper's closing §9 example as a reusable kernel: counts `i` in
/// `0..imax` with `i % d == 0`, using the strength-reduced
/// `test += dinv` loop (no multiply or divide in the body).
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `d <= 0`.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::count_multiples;
///
/// assert_eq!(count_multiples(1000, 100)?, 10);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn count_multiples(imax: i32, d: i32) -> Result<u64, DivisorError> {
    let scanner = DivisibilityScanner::new(d)?;
    Ok(scanner
        .take(imax.max(0) as usize)
        .filter(|&divisible| divisible)
        .count() as u64)
}

/// Baseline for [`count_multiples`] with hardware `%`.
pub fn count_multiples_baseline(imax: i32, d: i32) -> u64 {
    (0..imax.max(0)).filter(|i| i % d == 0).count() as u64
}

/// Counts the elements of `ns` divisible by `d`, one §9 inverse-rotate
/// test per element — the loop body a compiler emits after
/// strength-reducing `if (n % d == 0)` against an invariant divisor.
/// Unlike [`count_multiples`] the inputs are arbitrary, so the additive
/// scanner does not apply; this is the first-class divisibility *plan*
/// at work.
///
/// # Errors
///
/// Returns [`DivisorError::Zero`] when `d == 0`.
///
/// # Examples
///
/// ```
/// use magicdiv_workloads::count_divisible;
///
/// assert_eq!(count_divisible(&[0, 30, 31, 60, 90], 30)?, 4);
/// # Ok::<(), magicdiv::DivisorError>(())
/// ```
pub fn count_divisible(ns: &[u64], d: u64) -> Result<u64, DivisorError> {
    let div = ExactUnsignedDivisor::new(d)?;
    Ok(ns.iter().filter(|&&n| div.divides(n)).count() as u64)
}

/// Baseline for [`count_divisible`] with hardware `%`.
pub fn count_divisible_baseline(ns: &[u64], d: u64) -> u64 {
    ns.iter().filter(|&&n| n % d == 0).count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_count_matches_simulation() {
        for start in 0u64..20 {
            for end in 0u64..25 {
                for step in 1u64..8 {
                    let mut n = 0u64;
                    let mut i = start;
                    while i < end {
                        n += 1;
                        i += step;
                    }
                    assert_eq!(
                        trip_count(start, end, step).unwrap(),
                        n,
                        "{start}..{end} by {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn trip_count_signed_matches_simulation() {
        for start in -10i64..10 {
            for end in -10i64..10 {
                for step in [-3i64, -1, 1, 2, 5] {
                    let mut n = 0i64;
                    let mut i = start;
                    while (step > 0 && i < end) || (step < 0 && i > end) {
                        n += 1;
                        i += step;
                    }
                    assert_eq!(
                        trip_count_signed(start, end, step).unwrap(),
                        n,
                        "{start}..{end} by {step}"
                    );
                }
            }
        }
    }

    #[test]
    fn count_multiples_matches_baseline() {
        for d in [1i32, 2, 3, 7, 100, 127] {
            for imax in [0i32, 1, 99, 100, 101, 10_000] {
                assert_eq!(
                    count_multiples(imax, d).unwrap(),
                    count_multiples_baseline(imax, d),
                    "imax={imax} d={d}"
                );
            }
        }
    }

    #[test]
    fn count_divisible_matches_baseline() {
        let ns: Vec<u64> = (0..4096u64)
            .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .chain([0, 1, u64::MAX, u64::MAX - 1])
            .collect();
        for d in [1u64, 2, 3, 7, 60, 100, 641, 1 << 20] {
            assert_eq!(
                count_divisible(&ns, d).unwrap(),
                count_divisible_baseline(&ns, d),
                "d={d}"
            );
        }
    }

    #[test]
    fn zero_step_rejected() {
        assert!(trip_count(0, 10, 0).is_err());
        assert!(trip_count_signed(0, 10, 0).is_err());
        assert!(count_multiples(10, 0).is_err());
        assert!(count_divisible(&[1, 2, 3], 0).is_err());
    }
}
