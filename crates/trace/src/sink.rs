//! Sinks and the thread-local dispatcher.
//!
//! A [`Sink`] consumes the span/event stream. Sinks are installed
//! per-thread with [`with_sink`] (scoped) or [`install`] (RAII guard);
//! when several are installed they all receive every record (tee). With
//! no sink installed, [`enabled`] is `false` and every instrumentation
//! site reduces to one thread-local read — the hot paths stay clean.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::Event;

/// A consumer of spans and events.
pub trait Sink: Send + Sync {
    /// An event was emitted at span nesting `depth`.
    fn event(&self, depth: u32, event: &Event);
    /// A span named `name` opened at nesting `depth`.
    fn span_enter(&self, _depth: u32, _name: &'static str) {}
    /// The span named `name` at nesting `depth` closed.
    fn span_exit(&self, _depth: u32, _name: &'static str) {}
}

thread_local! {
    static SINKS: RefCell<Vec<Arc<dyn Sink>>> = const { RefCell::new(Vec::new()) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Whether any sink is installed on this thread. Instrumentation sites
/// check this before building an [`Event`], so disabled tracing costs a
/// single thread-local read.
#[inline]
pub fn enabled() -> bool {
    SINKS.with(|s| !s.borrow().is_empty())
}

/// Sends `event` to every installed sink (no-op when none).
pub fn emit(event: Event) {
    SINKS.with(|s| {
        let sinks = s.borrow();
        if sinks.is_empty() {
            return;
        }
        let depth = DEPTH.with(Cell::get);
        for sink in sinks.iter() {
            sink.event(depth, &event);
        }
    });
}

/// Opens a span: nested events and spans are indented under it by tree
/// sinks. The span closes when the returned guard drops.
///
/// # Examples
///
/// ```
/// use magicdiv_trace::{span, with_sink, Event, TextTreeSink};
/// use std::sync::Arc;
///
/// let sink = Arc::new(TextTreeSink::new());
/// with_sink(sink.clone(), || {
///     let _s = span("outer");
///     magicdiv_trace::emit(Event::new("inner"));
/// });
/// assert_eq!(sink.finish(), "outer\n  inner\n");
/// ```
#[must_use = "the span closes when the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    let active = SINKS.with(|s| {
        let sinks = s.borrow();
        if sinks.is_empty() {
            return false;
        }
        let depth = DEPTH.with(Cell::get);
        for sink in sinks.iter() {
            sink.span_enter(depth, name);
        }
        true
    });
    if active {
        DEPTH.with(|d| d.set(d.get() + 1));
    }
    SpanGuard { name, active }
}

/// RAII guard returned by [`span`].
pub struct SpanGuard {
    name: &'static str,
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let depth = DEPTH.with(|d| {
            let depth = d.get().saturating_sub(1);
            d.set(depth);
            depth
        });
        SINKS.with(|s| {
            for sink in s.borrow().iter() {
                sink.span_exit(depth, self.name);
            }
        });
    }
}

/// Installs `sink` on this thread for the duration of `f` (stacked on
/// top of any sinks already installed).
pub fn with_sink<T>(sink: Arc<dyn Sink>, f: impl FnOnce() -> T) -> T {
    let _guard = install(sink);
    f()
}

/// Installs `sink` on this thread until the returned guard drops.
/// Multiple installed sinks all receive every record.
#[must_use = "the sink is removed when the guard drops"]
pub fn install(sink: Arc<dyn Sink>) -> InstallGuard {
    SINKS.with(|s| s.borrow_mut().push(sink));
    InstallGuard { _private: () }
}

/// RAII guard returned by [`install`].
pub struct InstallGuard {
    _private: (),
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        SINKS.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Emits an event when (and only when) a sink is installed.
///
/// ```
/// magicdiv_trace::event!("plan.decision", "strategy" => "shift", "sh" => 3u32);
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:literal => $val:expr)* $(,)?) => {
        if $crate::enabled() {
            $crate::emit($crate::Event::new($name)$(.with($key, $val))*);
        }
    };
}

/// A sink that discards everything (for measuring instrumentation
/// overhead with tracing "on" structurally but producing no output).
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn event(&self, _depth: u32, _event: &Event) {}
}

fn lock_str(buf: &Mutex<String>) -> std::sync::MutexGuard<'_, String> {
    buf.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders the stream as a human-readable indented tree, two spaces per
/// span level. [`TextTreeSink::finish`] returns the accumulated text.
#[derive(Debug, Default)]
pub struct TextTreeSink {
    buf: Mutex<String>,
}

impl TextTreeSink {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated tree text (and clears the buffer).
    pub fn finish(&self) -> String {
        std::mem::take(&mut *lock_str(&self.buf))
    }
}

impl Sink for TextTreeSink {
    fn event(&self, depth: u32, event: &Event) {
        let mut buf = lock_str(&self.buf);
        for _ in 0..depth {
            buf.push_str("  ");
        }
        buf.push_str(&event.to_string());
        buf.push('\n');
    }

    fn span_enter(&self, depth: u32, name: &'static str) {
        let mut buf = lock_str(&self.buf);
        for _ in 0..depth {
            buf.push_str("  ");
        }
        buf.push_str(name);
        buf.push('\n');
    }
}

/// Renders the stream as machine-readable JSON Lines: one object per
/// record with `type`, `depth`, `name` and (for events) `fields`.
#[derive(Debug, Default)]
pub struct JsonlSink {
    buf: Mutex<String>,
    seq: AtomicU64,
}

impl JsonlSink {
    /// An empty JSONL buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulated JSONL text (and clears the buffer).
    pub fn finish(&self) -> String {
        std::mem::take(&mut *lock_str(&self.buf))
    }

    fn push_line(&self, line: String) {
        let mut buf = lock_str(&self.buf);
        buf.push_str(&line);
        buf.push('\n');
    }
}

impl Sink for JsonlSink {
    fn event(&self, depth: u32, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut line = format!(
            "{{\"seq\":{seq},\"type\":\"event\",\"depth\":{depth},\"name\":{}",
            crate::event::json_string(event.name)
        );
        line.push_str(",\"fields\":{");
        for (i, f) in event.fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&crate::event::json_string(f.key));
            line.push(':');
            line.push_str(&f.value.to_json());
        }
        line.push_str("}}");
        self.push_line(line);
    }

    fn span_enter(&self, depth: u32, name: &'static str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push_line(format!(
            "{{\"seq\":{seq},\"type\":\"span_enter\",\"depth\":{depth},\"name\":{}}}",
            crate::event::json_string(name)
        ));
    }

    fn span_exit(&self, depth: u32, name: &'static str) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push_line(format!(
            "{{\"seq\":{seq},\"type\":\"span_exit\",\"depth\":{depth},\"name\":{}}}",
            crate::event::json_string(name)
        ));
    }
}

/// A sink that retains every record in memory for programmatic
/// inspection (the test suites' window into the instrumentation).
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events captured so far, in order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Captured events with the given name.
    pub fn named(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| e.name == name)
            .collect()
    }
}

impl Sink for CaptureSink {
    fn event(&self, _depth: u32, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default() {
        assert!(!enabled());
        // emit with no sink is a no-op, not a panic.
        emit(Event::new("nothing"));
        let _g = span("nothing");
    }

    #[test]
    fn tee_to_multiple_sinks() {
        let a = Arc::new(CaptureSink::new());
        let b = Arc::new(CaptureSink::new());
        with_sink(a.clone(), || {
            with_sink(b.clone(), || {
                event!("both", "x" => 1u32);
            });
            event!("only_a", "x" => 2u32);
        });
        assert_eq!(a.events().len(), 2);
        assert_eq!(b.events().len(), 1);
        assert_eq!(b.events()[0].name, "both");
    }

    #[test]
    fn tree_indents_spans() {
        let sink = Arc::new(TextTreeSink::new());
        with_sink(sink.clone(), || {
            let _outer = span("outer");
            emit(Event::new("ev").with("k", 1u32));
            {
                let _inner = span("inner");
                emit(Event::new("deep"));
            }
        });
        assert_eq!(sink.finish(), "outer\n  ev k=1\n  inner\n    deep\n");
    }

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let sink = Arc::new(JsonlSink::new());
        with_sink(sink.clone(), || {
            let _s = span("s");
            event!("e", "count" => 3u32, "name" => "x y");
        });
        let out = sink.finish();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\":\"span_enter\""));
        assert!(lines[1].contains("\"count\":3"));
        assert!(lines[1].contains("\"name\":\"x y\""));
        assert!(lines[2].contains("\"type\":\"span_exit\""));
    }

    #[test]
    fn depth_restored_after_guard_drop() {
        let sink = Arc::new(TextTreeSink::new());
        with_sink(sink.clone(), || {
            {
                let _s = span("a");
            }
            emit(Event::new("top"));
        });
        assert_eq!(sink.finish(), "a\ntop\n");
    }
}
