//! Typed events: a static name plus a flat list of key/value fields.
//!
//! Events are the unit every pipeline layer emits — a plan decision, an
//! optimizer pass delta, a cycle attribution. They are plain data so any
//! [`Sink`](crate::Sink) can render them (text tree, JSONL, metrics).

use core::fmt;

/// A field value. Deliberately small: the pipeline reports integers
/// (constants, counts, cycles), ratios, names and flags — nothing else.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer (counts, widths, shifts).
    U64(u64),
    /// A wide unsigned integer (magic multipliers up to 128 bits).
    U128(u128),
    /// A signed integer (divisors).
    I128(i128),
    /// A ratio or time measurement.
    F64(f64),
    /// A name, mnemonic or human-readable explanation.
    Str(String),
    /// A flag.
    Bool(bool),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::U128(v) => write!(f, "{v}"),
            Value::I128(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.4}"),
            Value::Str(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// Renders the value as a JSON scalar (strings escaped and quoted).
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::U128(v) => {
                // JSON numbers above 2^53 lose precision in many readers;
                // wide multipliers are emitted as strings.
                if *v <= (1u128 << 53) {
                    v.to_string()
                } else {
                    format!("\"{v}\"")
                }
            }
            Value::I128(v) => {
                if v.unsigned_abs() <= (1u128 << 53) {
                    v.to_string()
                } else {
                    format!("\"{v}\"")
                }
            }
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v:.6}")
                } else {
                    "null".to_string()
                }
            }
            Value::Str(v) => json_string(v),
            Value::Bool(v) => v.to_string(),
        }
    }

    /// The value as a `u64` count, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::U128(v) => u64::try_from(*v).ok(),
            Value::I128(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u128> for Value {
    fn from(v: u128) -> Self {
        Value::U128(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I128(v as i128)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I128(v as i128)
    }
}
impl From<i128> for Value {
    fn from(v: i128) -> Self {
        Value::I128(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// One key/value pair of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static so events stay allocation-light and sinks can
    /// key metrics off it).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

/// A typed event: a static name plus fields.
///
/// # Examples
///
/// ```
/// use magicdiv_trace::Event;
///
/// let ev = Event::new("plan.decision")
///     .with("strategy", "mul_shift")
///     .with("sh_post", 3u32);
/// assert_eq!(ev.get("sh_post").and_then(|v| v.as_u64()), Some(3));
/// assert_eq!(ev.to_string(), "plan.decision strategy=mul_shift sh_post=3");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Dotted event name, `layer.what` (e.g. `ir.pass`, `simcpu.cycles`).
    pub name: &'static str,
    /// The fields, in emission order.
    pub fields: Vec<Field>,
}

impl Event {
    /// Starts an event with no fields.
    pub fn new(name: &'static str) -> Self {
        Event {
            name,
            fields: Vec::new(),
        }
    }

    /// Appends a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push(Field {
            key,
            value: value.into(),
        });
        self
    }

    /// Looks up a field by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|f| f.key == key).map(|f| &f.value)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for field in &self.fields {
            match &field.value {
                Value::Str(s) if s.contains(' ') => {
                    write!(f, " {}={s:?}", field.key)?;
                }
                v => write!(f, " {}={v}", field.key)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_quotes_spaced_strings() {
        let ev = Event::new("x").with("why", "d == 1 => identity");
        assert_eq!(ev.to_string(), "x why=\"d == 1 => identity\"");
    }

    #[test]
    fn json_scalars() {
        assert_eq!(Value::U64(7).to_json(), "7");
        assert_eq!(Value::Bool(true).to_json(), "true");
        assert_eq!(Value::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
        // Wide multipliers become strings to survive f64 JSON readers.
        assert_eq!(
            Value::U128(u128::MAX).to_json(),
            format!("\"{}\"", u128::MAX)
        );
    }
}
