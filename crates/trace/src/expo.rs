//! Prometheus-style text exposition of a [`MetricsSnapshot`].
//!
//! [`render_exposition`] turns the registry's counters and histograms
//! into the classic scrape format: `# TYPE` comment lines, one sample
//! per line, names sanitized to `[a-zA-Z0-9_]` under a common prefix,
//! and a **stable sort** so two snapshots of the same run diff cleanly
//! (`drift` consumes exactly this property).
//!
//! Divisor-keyed series are the cardinality hazard: a zipf stream of
//! divisors can mint one metric name per divisor. Names whose last
//! dot-segment is numeric (`service.requests.d.7`) are folded into one
//! metric family with a `d="7"` label; each family keeps at most
//! [`ExpositionOptions::max_label_card`] smallest keys and merges the
//! remainder into an explicit `d="other"` bucket, so the exposition
//! stays bounded no matter what the divisor stream looked like.
//!
//! # Examples
//!
//! ```
//! use magicdiv_trace::{render_exposition, ExpositionOptions, Registry};
//!
//! let reg = Registry::new();
//! reg.counter("cache.hit").add(3);
//! reg.counter("service.requests.d.7").add(2);
//! let text = render_exposition(&reg.snapshot(), &ExpositionOptions::default());
//! assert!(text.contains("# TYPE magicdiv_cache_hit counter"));
//! assert!(text.contains("magicdiv_cache_hit 3"));
//! assert!(text.contains("magicdiv_service_requests_d{d=\"7\"} 2"));
//! ```

use std::collections::BTreeMap;

use crate::metrics::{BucketCount, HistogramSnapshot, MetricsSnapshot};

/// Rendering knobs for [`render_exposition`].
#[derive(Debug, Clone)]
pub struct ExpositionOptions {
    /// Prefix prepended (with `_`) to every metric name.
    pub prefix: &'static str,
    /// Maximum numeric-label keys kept per family before folding the
    /// rest into the `d="other"` bucket.
    pub max_label_card: usize,
}

impl Default for ExpositionOptions {
    fn default() -> Self {
        ExpositionOptions {
            prefix: "magicdiv",
            max_label_card: 8,
        }
    }
}

/// Sanitizes a dotted metric name into `[a-zA-Z0-9_]` under `prefix`.
fn sanitize(prefix: &str, name: &str) -> String {
    let mut out = String::with_capacity(prefix.len() + 1 + name.len());
    if !prefix.is_empty() {
        out.push_str(prefix);
        out.push('_');
    }
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Splits `a.b.7` into `("a.b", Some(7))`; names without an all-digit
/// last segment stay whole.
fn split_numeric_suffix(name: &str) -> (&str, Option<u128>) {
    if let Some((family, last)) = name.rsplit_once('.') {
        if !last.is_empty() && last.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(v) = last.parse::<u128>() {
                return (family, Some(v));
            }
        }
    }
    (name, None)
}

/// A counter family: an optional unlabeled sample plus labeled keys.
#[derive(Default)]
struct CounterFamily {
    plain: Option<u64>,
    labeled: BTreeMap<u128, u64>,
}

/// A histogram family, same shape.
#[derive(Default)]
struct HistogramFamily {
    plain: Option<HistogramSnapshot>,
    labeled: BTreeMap<u128, HistogramSnapshot>,
}

/// Merges `b` into `a` bucket-wise (used for the `other` fold).
fn merge_histograms(a: &mut HistogramSnapshot, b: &HistogramSnapshot) {
    if b.count == 0 {
        return;
    }
    if a.count == 0 {
        *a = b.clone();
        return;
    }
    let mut buckets: BTreeMap<u64, u64> = a.buckets.iter().map(|b| (b.le, b.count)).collect();
    for bc in &b.buckets {
        *buckets.entry(bc.le).or_insert(0) += bc.count;
    }
    a.count += b.count;
    a.sum += b.sum;
    a.min = a.min.min(b.min);
    a.max = a.max.max(b.max);
    a.buckets = buckets
        .into_iter()
        .map(|(le, count)| BucketCount { le, count })
        .collect();
}

/// Splits a labeled map into (kept keys, merged-other), keeping the
/// `max_label_card` smallest keys.
fn bound_labels<V: Clone>(
    labeled: &BTreeMap<u128, V>,
    max_card: usize,
) -> (Vec<(u128, V)>, Vec<V>) {
    let kept: Vec<(u128, V)> = labeled
        .iter()
        .take(max_card)
        .map(|(k, v)| (*k, v.clone()))
        .collect();
    let rest: Vec<V> = labeled
        .iter()
        .skip(max_card)
        .map(|(_, v)| v.clone())
        .collect();
    (kept, rest)
}

/// Writes one histogram's sample lines (`_bucket`/`_sum`/`_count`).
fn render_histogram_samples(
    out: &mut String,
    name: &str,
    label: Option<&str>,
    snap: &HistogramSnapshot,
) {
    let label_prefix = |le: &str| match label {
        Some(l) => format!("{{d=\"{l}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let plain_suffix = match label {
        Some(l) => format!("{{d=\"{l}\"}}"),
        None => String::new(),
    };
    let mut cum = 0u64;
    for b in &snap.buckets {
        cum += b.count;
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            label_prefix(&b.le.to_string())
        ));
    }
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        label_prefix("+Inf"),
        snap.count
    ));
    out.push_str(&format!("{name}_sum{plain_suffix} {}\n", snap.sum));
    out.push_str(&format!("{name}_count{plain_suffix} {}\n", snap.count));
}

/// Renders `snap` in the Prometheus text format. Deterministic for a
/// given snapshot: families and label keys are emitted in sorted order
/// and label cardinality is bounded (see the [module docs](self)).
pub fn render_exposition(snap: &MetricsSnapshot, opts: &ExpositionOptions) -> String {
    let mut counters: BTreeMap<String, CounterFamily> = BTreeMap::new();
    for (name, value) in &snap.counters {
        let (family, key) = split_numeric_suffix(name);
        let fam = counters.entry(sanitize(opts.prefix, family)).or_default();
        match key {
            Some(k) => {
                *fam.labeled.entry(k).or_insert(0) += value;
            }
            None => fam.plain = Some(fam.plain.unwrap_or(0) + value),
        }
    }
    let mut histograms: BTreeMap<String, HistogramFamily> = BTreeMap::new();
    for (name, value) in &snap.histograms {
        let (family, key) = split_numeric_suffix(name);
        let fam = histograms.entry(sanitize(opts.prefix, family)).or_default();
        match key {
            Some(k) => {
                merge_histograms(fam.labeled.entry(k).or_default(), value);
            }
            None => {
                let slot = fam.plain.get_or_insert_with(HistogramSnapshot::default);
                merge_histograms(slot, value);
            }
        }
    }

    let mut out = String::new();
    for (name, fam) in &counters {
        out.push_str(&format!("# TYPE {name} counter\n"));
        if let Some(v) = fam.plain {
            out.push_str(&format!("{name} {v}\n"));
        }
        if !fam.labeled.is_empty() {
            let (kept, rest) = bound_labels(&fam.labeled, opts.max_label_card);
            for (k, v) in kept {
                out.push_str(&format!("{name}{{d=\"{k}\"}} {v}\n"));
            }
            let other: u64 = rest.into_iter().sum();
            out.push_str(&format!("{name}{{d=\"other\"}} {other}\n"));
        }
    }
    for (name, fam) in &histograms {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        if let Some(snap) = &fam.plain {
            render_histogram_samples(&mut out, name, None, snap);
        }
        if !fam.labeled.is_empty() {
            let (kept, rest) = bound_labels(&fam.labeled, opts.max_label_card);
            for (k, snap) in &kept {
                render_histogram_samples(&mut out, name, Some(&k.to_string()), snap);
            }
            let mut other = HistogramSnapshot::default();
            for snap in &rest {
                merge_histograms(&mut other, snap);
            }
            render_histogram_samples(&mut out, name, Some("other"), &other);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn numeric_suffix_becomes_a_label() {
        assert_eq!(split_numeric_suffix("a.b.7"), ("a.b", Some(7)));
        assert_eq!(split_numeric_suffix("a.b.d"), ("a.b.d", None));
        assert_eq!(split_numeric_suffix("plain"), ("plain", None));
        assert_eq!(split_numeric_suffix("x.007"), ("x", Some(7)));
    }

    #[test]
    fn exposition_is_sorted_and_prefixed() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").add(5);
        reg.histogram("guard.probe.witnesses").observe(3);
        let text = render_exposition(&reg.snapshot(), &ExpositionOptions::default());
        let a = text.find("magicdiv_a_first 5").expect("a.first");
        let z = text.find("magicdiv_z_last 1").expect("z.last");
        assert!(a < z);
        assert!(text.contains("# TYPE magicdiv_guard_probe_witnesses histogram"));
        assert!(text.contains("magicdiv_guard_probe_witnesses_bucket{le=\"3\"} 1"));
        assert!(text.contains("magicdiv_guard_probe_witnesses_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("magicdiv_guard_probe_witnesses_count 1"));
    }

    #[test]
    fn label_cardinality_is_bounded_with_an_other_bucket() {
        let reg = Registry::new();
        for d in 1..=20u64 {
            reg.counter(&format!("service.requests.d.{d}")).add(d);
        }
        let opts = ExpositionOptions {
            max_label_card: 4,
            ..ExpositionOptions::default()
        };
        let text = render_exposition(&reg.snapshot(), &opts);
        for d in 1..=4u64 {
            assert!(
                text.contains(&format!("magicdiv_service_requests_d{{d=\"{d}\"}} {d}")),
                "{text}"
            );
        }
        assert!(!text.contains("{d=\"5\"}"), "{text}");
        // 5 + 6 + ... + 20 = 200.
        assert!(
            text.contains("magicdiv_service_requests_d{d=\"other\"} 200"),
            "{text}"
        );
    }

    #[test]
    fn labeled_histograms_fold_into_other() {
        let reg = Registry::new();
        for d in 1..=3u64 {
            reg.histogram(&format!("lat.d.{d}")).observe(d);
        }
        let opts = ExpositionOptions {
            max_label_card: 1,
            ..ExpositionOptions::default()
        };
        let text = render_exposition(&reg.snapshot(), &opts);
        assert!(
            text.contains("magicdiv_lat_d_bucket{d=\"1\",le=\"1\"} 1"),
            "{text}"
        );
        assert!(text.contains("magicdiv_lat_d_sum{d=\"other\"} 5"), "{text}");
        assert!(
            text.contains("magicdiv_lat_d_count{d=\"other\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn cumulative_buckets() {
        let reg = Registry::new();
        let h = reg.histogram("cycles");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let text = render_exposition(&reg.snapshot(), &ExpositionOptions::default());
        assert!(
            text.contains("magicdiv_cycles_bucket{le=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("magicdiv_cycles_bucket{le=\"3\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("magicdiv_cycles_bucket{le=\"127\"} 4"),
            "{text}"
        );
        assert!(
            text.contains("magicdiv_cycles_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("magicdiv_cycles_sum 106"), "{text}");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        let text = render_exposition(&MetricsSnapshot::default(), &ExpositionOptions::default());
        assert!(text.is_empty());
    }
}
