//! Atomic counters and power-of-two histograms, with a registry and a
//! [`Sink`](crate::Sink) that aggregates the event stream into them.
//!
//! Counters and histograms are lock-free once created (plain atomics);
//! the registry itself takes a mutex only on first registration of a
//! name. A [`MetricsSnapshot`] is an ordinary sortable value the bins
//! serialize into their JSON reports.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::event::{json_string, Event, Value};
use crate::sink::Sink;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    n: AtomicU64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.n.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.n.load(Ordering::Relaxed)
    }
}

/// Number of log2 buckets: values land in bucket `⌈log2(v+1)⌉`, so
/// bucket 0 holds 0, bucket 1 holds 1, bucket k holds `2^(k-1)+1 ..= 2^k`.
const BUCKETS: usize = 65;

/// A histogram over `u64` observations with power-of-two buckets, plus
/// exact count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// The bucket index for an observation.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some(BucketCount {
                        le: if i == 0 { 0 } else { ((1u128 << i) - 1) as u64 },
                        count: n,
                    })
                })
                .collect(),
        }
    }
}

/// One non-empty histogram bucket: `count` observations `<= le` (and
/// greater than the previous bucket's `le`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket (`2^k - 1`).
    pub le: u64,
    /// Observations in the bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// The non-empty buckets, in increasing order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.try_mean().unwrap_or(0.0)
    }

    /// Mean observation, or `None` for the empty histogram — the
    /// non-lossy form for callers that must distinguish "no data" from
    /// "observed zeros" without a NaN ever reaching a report.
    pub fn try_mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// [`quantile`](Self::quantile) as an Option: `None` when empty.
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.quantile(q))
        }
    }

    /// Estimated value at quantile `q` (clamped to `0.0..=1.0`),
    /// interpolated linearly *within* the power-of-two bucket that
    /// contains the target rank and clamped to the exact observed
    /// `[min, max]`. Returns 0.0 for an empty histogram.
    ///
    /// The buckets only record that an observation fell in
    /// `(prev_le, le]`, so the estimate assumes a uniform spread inside
    /// the bucket — exact for counts that land on bucket boundaries,
    /// and never off by more than one bucket span otherwise.
    ///
    /// # Examples
    ///
    /// ```
    /// use magicdiv_trace::Histogram;
    ///
    /// let h = Histogram::new();
    /// for v in 1..=1000u64 {
    ///     h.observe(v);
    /// }
    /// let s = h.snapshot();
    /// let p50 = s.quantile(0.5);
    /// assert!((400.0..=600.0).contains(&p50), "p50 = {p50}");
    /// assert_eq!(s.quantile(1.0), 1000.0);
    /// ```
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        // NaN would sail through `clamp` (which propagates it) and turn
        // every comparison below false; pin it to the 0th quantile so a
        // bad caller gets a deterministic finite answer.
        let q = if q.is_nan() { 0.0 } else { q };
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        let mut prev_le = 0u64;
        for b in &self.buckets {
            let upper = cum + b.count;
            if (upper as f64) >= target {
                let frac = if b.count == 0 {
                    0.0
                } else {
                    (target - cum as f64) / b.count as f64
                };
                let lo = prev_le as f64;
                let hi = b.le as f64;
                let est = lo + frac.clamp(0.0, 1.0) * (hi - lo);
                return est.clamp(self.min as f64, self.max as f64);
            }
            cum = upper;
            prev_le = b.le;
        }
        self.max as f64
    }

    /// Renders as a JSON object (with interpolated p50/p90/p99).
    /// Non-finite statistics (which no current path can produce, but
    /// which would be invalid JSON) render as `null` rather than `NaN`.
    pub fn to_json(&self) -> String {
        fn finite(v: f64) -> String {
            if v.is_finite() {
                format!("{v:.4}")
            } else {
                "null".to_string()
            }
        }
        let buckets: Vec<String> = self
            .buckets
            .iter()
            .map(|b| format!("[{},{}]", b.le, b.count))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
             \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.min,
            self.max,
            finite(self.mean()),
            finite(self.quantile(0.50)),
            finite(self.quantile(0.90)),
            finite(self.quantile(0.99)),
            buckets.join(",")
        )
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Default cap on distinct counter names (and, separately, histogram
/// names) a [`Registry`] will register. Registrations past the cap are
/// counted by `registry.overflow` and absorbed by the shared
/// `registry.other` series, so a zipf divisor stream minting one name
/// per divisor cannot grow the registry without bound.
pub const DEFAULT_REGISTRY_CAPACITY: usize = 512;

/// A named collection of counters and histograms.
///
/// Cardinality is bounded: at most `capacity` distinct counter names
/// and `capacity` distinct histogram names are registered (default
/// [`DEFAULT_REGISTRY_CAPACITY`]). A lookup of a *new* name past the
/// cap increments the `registry.overflow` counter and returns the
/// shared `registry.other` sink metric instead — callers keep working,
/// updates keep being counted, memory stays fixed.
///
/// # Examples
///
/// ```
/// use magicdiv_trace::Registry;
///
/// let reg = Registry::new();
/// reg.counter("plans").inc();
/// reg.histogram("cycles").observe(9);
/// reg.histogram("cycles").observe(5);
/// let snap = reg.snapshot();
/// assert_eq!(snap.counters["plans"], 1);
/// assert_eq!(snap.histograms["cycles"].count, 2);
/// assert_eq!(snap.histograms["cycles"].sum, 14);
/// ```
pub struct Registry {
    inner: Mutex<RegistryInner>,
    capacity: usize,
    overflow: Arc<Counter>,
    other_counter: Arc<Counter>,
    other_histogram: Arc<Histogram>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_REGISTRY_CAPACITY)
    }
}

impl Registry {
    /// An empty registry with the default cardinality cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty registry capped at `capacity` distinct names per metric
    /// kind (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Registry {
            inner: Mutex::new(RegistryInner::default()),
            capacity: capacity.max(1),
            overflow: Arc::new(Counter::new()),
            other_counter: Arc::new(Counter::new()),
            other_histogram: Arc::new(Histogram::new()),
        }
    }

    /// New-name registrations rejected by the cardinality cap so far.
    pub fn overflow(&self) -> u64 {
        self.overflow.get()
    }

    /// The counter named `name`, created on first use. Past the
    /// cardinality cap, new names share the `registry.other` counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        if inner.counters.len() >= self.capacity {
            self.overflow.inc();
            return self.other_counter.clone();
        }
        let c = Arc::new(Counter::new());
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// The histogram named `name`, created on first use. Past the
    /// cardinality cap, new names share the `registry.other` histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        if inner.histograms.len() >= self.capacity {
            self.overflow.inc();
            return self.other_histogram.clone();
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// A point-in-time copy of every metric. When the cardinality cap
    /// was hit, the snapshot carries `registry.overflow` (rejected
    /// registrations) and the merged `registry.other` series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let mut counters: BTreeMap<String, u64> = inner
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let mut histograms: BTreeMap<String, HistogramSnapshot> = inner
            .histograms
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let overflow = self.overflow.get();
        if overflow > 0 {
            counters.insert("registry.overflow".to_string(), overflow);
            let other = self.other_counter.get();
            if other > 0 {
                counters.insert("registry.other".to_string(), other);
            }
            let other_hist = self.other_histogram.snapshot();
            if other_hist.count > 0 {
                histograms.insert("registry.other".to_string(), other_hist);
            }
        }
        MetricsSnapshot {
            counters,
            histograms,
        }
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Renders as a JSON object `{"counters":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_string(k)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, v)| format!("{}:{}", json_string(k), v.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            histograms.join(",")
        )
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k} = {v}")?;
        }
        for (k, h) in &self.histograms {
            writeln!(
                f,
                "{k}: n={} sum={} min={} max={} mean={:.2} p50={:.1} p90={:.1} p99={:.1}",
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            )?;
        }
        Ok(())
    }
}

/// A sink that aggregates the event stream into a [`Registry`]: every
/// event increments counter `events.<name>`, and every integer field
/// feeds histogram `<name>.<key>`.
pub struct MetricsSink {
    registry: Arc<Registry>,
}

impl MetricsSink {
    /// Aggregates into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        MetricsSink { registry }
    }

    /// The registry this sink feeds.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }
}

impl Sink for MetricsSink {
    fn event(&self, _depth: u32, event: &Event) {
        self.registry
            .counter(&format!("events.{}", event.name))
            .inc();
        for f in &event.fields {
            if let Some(v) = match f.value {
                Value::U64(v) => Some(v),
                Value::U128(v) => u64::try_from(v).ok(),
                _ => None,
            } {
                self.registry
                    .histogram(&format!("{}.{}", event.name, f.key))
                    .observe(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::with_sink;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 26.5);
        assert_eq!(s.buckets.iter().map(|b| b.count).sum::<u64>(), 4);
    }

    #[test]
    fn metrics_sink_aggregates_events() {
        let reg = Arc::new(Registry::new());
        with_sink(Arc::new(MetricsSink::new(reg.clone())), || {
            crate::event!("simcpu.plan_cycles", "cycles" => 9u64);
            crate::event!("simcpu.plan_cycles", "cycles" => 5u64);
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["events.simcpu.plan_cycles"], 2);
        let h = &snap.histograms["simcpu.plan_cycles.cycles"];
        assert_eq!((h.count, h.sum), (2, 14));
    }

    #[test]
    fn quantiles_of_empty_and_singleton() {
        let h = Histogram::new();
        assert_eq!(h.snapshot().quantile(0.5), 0.0);
        h.observe(42);
        let s = h.snapshot();
        // One observation: every quantile is that observation (clamped
        // to [min, max] = [42, 42]).
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), 42.0, "q={q}");
        }
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in 1..=1024u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        // Uniform 1..=1024: the true p50 is 512, exactly a bucket
        // boundary; p90 ≈ 922 sits inside the (512, 1024] bucket where
        // interpolation assumes uniform spread (which it is here).
        assert!(
            (s.quantile(0.5) - 512.0).abs() <= 1.0,
            "{}",
            s.quantile(0.5)
        );
        assert!(
            (s.quantile(0.9) - 921.6).abs() <= 16.0,
            "{}",
            s.quantile(0.9)
        );
        assert_eq!(s.quantile(1.0), 1024.0);
        assert_eq!(s.quantile(0.0), 1.0); // clamped to observed min
    }

    #[test]
    fn quantiles_are_monotone() {
        let h = Histogram::new();
        let mut x = 0x9e3779b97f4a7c15u64;
        for _ in 0..500 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.observe(x % 10_000);
        }
        let s = h.snapshot();
        let qs: Vec<f64> = (0..=20).map(|i| s.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(qs[0] >= s.min as f64 && qs[20] <= s.max as f64);
    }

    #[test]
    fn snapshot_json_carries_quantiles() {
        let reg = Registry::new();
        reg.histogram("h").observe(7);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"p50\":7.0000"), "{json}");
        assert!(json.contains("\"p99\":7.0000"), "{json}");
        let text = reg.snapshot().to_string();
        assert!(text.contains("p50=7.0"), "{text}");
    }

    #[test]
    fn empty_histogram_stats_stay_finite() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.try_mean(), None);
        assert_eq!(s.try_quantile(0.5), None);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        // NaN q is pinned, not propagated.
        assert_eq!(s.quantile(f64::NAN), 0.0);
        let json = s.to_json();
        assert!(!json.contains("NaN"), "{json}");
        assert!(json.contains("\"mean\":0.0000"), "{json}");
    }

    #[test]
    fn nan_quantile_is_pinned_on_nonempty_histograms() {
        let h = Histogram::new();
        h.observe(42);
        let s = h.snapshot();
        assert_eq!(s.quantile(f64::NAN), 42.0);
        assert_eq!(s.try_quantile(0.9), Some(42.0));
        assert_eq!(s.try_mean(), Some(42.0));
    }

    #[test]
    fn registry_cardinality_is_capped_with_overflow_counter() {
        let reg = Registry::with_capacity(4);
        for d in 0..10u64 {
            reg.counter(&format!("req.d.{d}")).add(1 + d);
        }
        // 4 registered, 6 rejected; rejected increments all landed in
        // the shared `registry.other` sink: (1+4)+...+(1+9) = 45.
        assert_eq!(reg.overflow(), 6);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["registry.overflow"], 6);
        assert_eq!(snap.counters["registry.other"], 45);
        assert_eq!(snap.counters["req.d.0"], 1);
        assert!(!snap.counters.contains_key("req.d.7"));
        // Existing names keep resolving to their own counter at the cap.
        reg.counter("req.d.0").inc();
        assert_eq!(reg.snapshot().counters["req.d.0"], 2);
    }

    #[test]
    fn histogram_cardinality_is_capped_too() {
        let reg = Registry::with_capacity(2);
        for d in 0..5u64 {
            reg.histogram(&format!("lat.d.{d}")).observe(d + 1);
        }
        assert_eq!(reg.overflow(), 3);
        let snap = reg.snapshot();
        // Overflowed observations merged: 3 + 4 + 5 = 12.
        assert_eq!(snap.histograms["registry.other"].count, 3);
        assert_eq!(snap.histograms["registry.other"].sum, 12);
        assert_eq!(snap.histograms.len(), 3);
    }

    #[test]
    fn snapshot_json_is_well_formed_enough() {
        let reg = Registry::new();
        reg.counter("a").add(2);
        reg.histogram("h").observe(7);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a\":2"));
        assert!(json.contains("\"buckets\":[[7,1]]"));
    }
}
