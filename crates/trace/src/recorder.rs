//! The flight recorder: a fixed-capacity ring of recent trace events
//! with automatic black-box dumps.
//!
//! A [`FlightRecorder`] is an ordinary [`Sink`](crate::Sink): install it
//! next to whatever other sinks a bin uses and it retains the last N
//! events per emitting thread in a preallocated ring (per-thread
//! segments, so writer threads never contend with each other). When an
//! event whose name is in the trigger set arrives — a guard demotion, a
//! cache poisoning, a circuit-breaker trip — the recorder snapshots
//! every segment into a [`BlackboxDump`]: the merged, sequence-ordered
//! tail of what the service was doing right before the fault, ending at
//! the trigger event itself.
//!
//! Writers use `try_lock` on their own segment and drop the record (and
//! count the drop) if a concurrent dump holds it, so the hot path never
//! blocks. With no sink installed at all, instrumentation sites are
//! still gated by [`enabled`](crate::enabled) and the recorder costs
//! nothing.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use magicdiv_trace::{with_sink, FlightRecorder};
//!
//! let rec = Arc::new(FlightRecorder::with_capacity(16));
//! with_sink(rec.clone(), || {
//!     magicdiv_trace::event!("plan.decision", "strategy" => "mul_shift");
//!     magicdiv_trace::event!("guard.demotion", "d" => 7u64, "why" => "probe");
//! });
//! let dumps = rec.take_dumps();
//! assert_eq!(dumps.len(), 1);
//! assert_eq!(dumps[0].trigger, "guard.demotion");
//! assert_eq!(dumps[0].events.last().unwrap().event.name, "guard.demotion");
//! ```

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, TryLockError, Weak};

use crate::event::{json_string, Event};
use crate::sink::Sink;

/// Event names that trigger an automatic black-box dump: the guarded
/// division service's fault signals (DESIGN.md §12) plus explicit chaos
/// findings.
pub const DEFAULT_BLACKBOX_TRIGGERS: &[&str] = &[
    "guard.demotion",
    "guard.circuit_open",
    "cache.poisoned",
    "cache.lock_poisoned",
    "chaos.finding",
];

/// Default per-thread ring capacity (events retained per segment).
pub const DEFAULT_RECORDER_CAPACITY: usize = 256;

/// Dumps retained before further triggers are counted as suppressed
/// rather than stored (a fault storm must not grow memory unboundedly).
const MAX_DUMPS: usize = 8;

static RECORDER_IDS: AtomicU64 = AtomicU64::new(1);
static GLOBAL_SEQ: AtomicU64 = AtomicU64::new(1);
static THREAD_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense id for the current thread (stable for its lifetime).
    static THREAD_ID: u64 = THREAD_IDS.fetch_add(1, Ordering::Relaxed);
    /// Per-thread cache of this thread's segment in each live recorder,
    /// keyed by recorder id. Weak so a dropped recorder's entries are
    /// reclaimed on the next lookup instead of pinning its rings.
    static LOCAL_SEGMENTS: RefCell<Vec<(u64, Weak<Segment>)>> = const { RefCell::new(Vec::new()) };
}

/// One recorded trace event with its global sequence stamp.
#[derive(Debug, Clone)]
pub struct RecordedEvent {
    /// Global monotone sequence number (total order across threads).
    pub seq: u64,
    /// Dense id of the thread that emitted the event.
    pub thread: u64,
    /// Span nesting depth at emission.
    pub depth: u32,
    /// The event itself.
    pub event: Event,
}

/// One thread's ring of recent events.
struct Segment {
    thread: u64,
    ring: Mutex<VecDeque<RecordedEvent>>,
    dropped: AtomicU64,
}

/// The black-box contents captured when a trigger event fired: every
/// retained event up to and including the trigger, merged across
/// threads and ordered by sequence number.
#[derive(Debug, Clone)]
pub struct BlackboxDump {
    /// Name of the event that triggered the dump.
    pub trigger: &'static str,
    /// Sequence stamp of the trigger event (the dump's last event).
    pub trigger_seq: u64,
    /// Events dropped by writers (contended segments) before the dump.
    pub dropped: u64,
    /// The retained events, ascending by `seq`; the trigger is last.
    pub events: Vec<RecordedEvent>,
}

impl BlackboxDump {
    /// Renders the dump as JSON Lines: a `"type":"blackbox"` header
    /// line, then one `"type":"event"` line per retained event in the
    /// same schema as [`JsonlSink`](crate::JsonlSink) (plus a `thread`
    /// key), so the drift bin can replay the dump like any archived
    /// trace stream.
    pub fn to_jsonl(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"blackbox\",\"trigger\":{},\"trigger_seq\":{},\
             \"events\":{},\"dropped\":{}}}\n",
            json_string(self.trigger),
            self.trigger_seq,
            self.events.len(),
            self.dropped
        );
        for r in &self.events {
            out.push_str(&format!(
                "{{\"seq\":{},\"type\":\"event\",\"depth\":{},\"thread\":{},\"name\":{}",
                r.seq,
                r.depth,
                r.thread,
                json_string(r.event.name)
            ));
            out.push_str(",\"fields\":{");
            for (i, f) in r.event.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&json_string(f.key));
                out.push(':');
                out.push_str(&f.value.to_json());
            }
            out.push_str("}}\n");
        }
        out
    }
}

/// A [`Sink`] that retains the last N events per emitting thread and
/// snapshots them into a [`BlackboxDump`] whenever a trigger event
/// (guard demotion, cache poisoning, circuit trip, chaos finding)
/// arrives. See the [module docs](self) for the full story.
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    triggers: Vec<&'static str>,
    segments: Mutex<Vec<Arc<Segment>>>,
    dumps: Mutex<Vec<BlackboxDump>>,
    suppressed: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder with the default per-thread capacity
    /// ([`DEFAULT_RECORDER_CAPACITY`]) and trigger set
    /// ([`DEFAULT_BLACKBOX_TRIGGERS`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// A recorder retaining the last `capacity` events per thread
    /// (minimum 1), with the default trigger set.
    pub fn with_capacity(capacity: usize) -> Self {
        FlightRecorder {
            id: RECORDER_IDS.fetch_add(1, Ordering::Relaxed),
            capacity: capacity.max(1),
            triggers: DEFAULT_BLACKBOX_TRIGGERS.to_vec(),
            segments: Mutex::new(Vec::new()),
            dumps: Mutex::new(Vec::new()),
            suppressed: AtomicU64::new(0),
        }
    }

    /// Replaces the trigger set (builder style). An empty set makes the
    /// recorder a pure ring: it still retains events but never dumps.
    pub fn with_triggers(mut self, triggers: &[&'static str]) -> Self {
        self.triggers = triggers.to_vec();
        self
    }

    /// Per-thread ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events dropped on contended segments (a concurrent dump held the
    /// ring lock; writers never block).
    pub fn dropped(&self) -> u64 {
        let segments = self
            .segments
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        segments
            .iter()
            .map(|s| s.dropped.load(Ordering::Relaxed))
            .sum()
    }

    /// Triggers that fired after [`MAX_DUMPS`] dumps were already
    /// retained (counted instead of stored).
    pub fn suppressed(&self) -> u64 {
        self.suppressed.load(Ordering::Relaxed)
    }

    /// Drains and returns every retained dump, oldest first.
    pub fn take_dumps(&self) -> Vec<BlackboxDump> {
        std::mem::take(&mut *self.dumps.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// This thread's segment, created and registered on first use
    /// (cold path; subsequent lookups hit the thread-local cache).
    fn segment(&self) -> Arc<Segment> {
        let cached = LOCAL_SEGMENTS.with(|v| {
            v.borrow()
                .iter()
                .find(|(id, _)| *id == self.id)
                .and_then(|(_, w)| w.upgrade())
        });
        if let Some(seg) = cached {
            return seg;
        }
        let seg = Arc::new(Segment {
            thread: THREAD_ID.with(|t| *t),
            ring: Mutex::new(VecDeque::with_capacity(self.capacity)),
            dropped: AtomicU64::new(0),
        });
        self.segments
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(seg.clone());
        LOCAL_SEGMENTS.with(|v| {
            let mut v = v.borrow_mut();
            v.retain(|(_, w)| w.strong_count() > 0);
            v.push((self.id, Arc::downgrade(&seg)));
        });
        seg
    }

    /// Snapshots every segment into a dump ending at `trigger_seq`.
    /// Events stamped after the trigger (a concurrent writer racing the
    /// dump) are excluded so the trigger is always the last event.
    fn dump(&self, trigger: &'static str, trigger_seq: u64) {
        {
            let dumps = self.dumps.lock().unwrap_or_else(PoisonError::into_inner);
            if dumps.len() >= MAX_DUMPS {
                self.suppressed.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        let segments = self
            .segments
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut events: Vec<RecordedEvent> = Vec::new();
        let mut dropped = 0u64;
        for seg in &segments {
            let ring = seg.ring.lock().unwrap_or_else(PoisonError::into_inner);
            events.extend(ring.iter().filter(|r| r.seq <= trigger_seq).cloned());
            dropped += seg.dropped.load(Ordering::Relaxed);
        }
        events.sort_by_key(|r| r.seq);
        let dump = BlackboxDump {
            trigger,
            trigger_seq,
            dropped,
            events,
        };
        let mut dumps = self.dumps.lock().unwrap_or_else(PoisonError::into_inner);
        if dumps.len() >= MAX_DUMPS {
            self.suppressed.fetch_add(1, Ordering::Relaxed);
            return;
        }
        dumps.push(dump);
    }
}

impl Sink for FlightRecorder {
    fn event(&self, depth: u32, event: &Event) {
        let seq = GLOBAL_SEQ.fetch_add(1, Ordering::Relaxed);
        let seg = self.segment();
        let rec = RecordedEvent {
            seq,
            thread: seg.thread,
            depth,
            event: event.clone(),
        };
        match seg.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() == self.capacity {
                    ring.pop_front();
                }
                ring.push_back(rec);
            }
            Err(TryLockError::Poisoned(p)) => {
                let mut ring = p.into_inner();
                if ring.len() == self.capacity {
                    ring.pop_front();
                }
                ring.push_back(rec);
            }
            Err(TryLockError::WouldBlock) => {
                seg.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        // The ring lock is released before dumping: the dump re-locks
        // every segment (including this one) to snapshot it.
        if self.triggers.contains(&event.name) {
            self.dump(event.name, seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::with_sink;

    #[test]
    fn ring_retains_only_the_last_n() {
        let rec = Arc::new(FlightRecorder::with_capacity(4).with_triggers(&["boom"]));
        with_sink(rec.clone(), || {
            for i in 0..10u64 {
                crate::event!("step", "i" => i);
            }
            crate::event!("boom", "d" => 7u64);
        });
        let dumps = rec.take_dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        // Capacity 4: the three newest steps plus the trigger.
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.events.last().map(|r| r.event.name), Some("boom"));
        assert!(d.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn default_triggers_catch_guard_demotion() {
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        with_sink(rec.clone(), || {
            crate::event!("plan.decision", "strategy" => "mul_shift");
            crate::event!("guard.demotion", "d" => 641u64, "why" => "checksum");
        });
        let dumps = rec.take_dumps();
        assert_eq!(dumps.len(), 1);
        assert_eq!(dumps[0].trigger, "guard.demotion");
        let last = dumps[0].events.last().expect("nonempty");
        assert_eq!(last.event.name, "guard.demotion");
        assert_eq!(last.event.get("d").map(|v| v.to_json()), Some("641".into()));
    }

    #[test]
    fn dump_count_is_bounded() {
        let rec = Arc::new(FlightRecorder::with_capacity(2).with_triggers(&["boom"]));
        with_sink(rec.clone(), || {
            for _ in 0..(MAX_DUMPS + 3) {
                crate::event!("boom");
            }
        });
        assert_eq!(rec.suppressed(), 3);
        assert_eq!(rec.take_dumps().len(), MAX_DUMPS);
        // Draining resets the budget.
        with_sink(rec.clone(), || crate::event!("boom"));
        assert_eq!(rec.take_dumps().len(), 1);
    }

    #[test]
    fn jsonl_round_trip_shape() {
        let rec = Arc::new(FlightRecorder::with_capacity(8));
        with_sink(rec.clone(), || {
            crate::event!("cache.poisoned", "width" => 32u32, "d_bits" => 10u64);
        });
        let dumps = rec.take_dumps();
        let text = dumps[0].to_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"type\":\"blackbox\""));
        assert!(lines[0].contains("\"trigger\":\"cache.poisoned\""));
        assert!(lines[1].contains("\"type\":\"event\""));
        assert!(lines[1].contains("\"d_bits\":10"));
        assert!(lines[1].contains("\"thread\":"));
    }

    #[test]
    fn segments_merge_across_threads() {
        let rec = Arc::new(FlightRecorder::with_capacity(64).with_triggers(&["boom"]));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let rec = rec.clone();
            handles.push(std::thread::spawn(move || {
                with_sink(rec, || {
                    for i in 0..8u64 {
                        crate::event!("work", "t" => t, "i" => i);
                    }
                });
            }));
        }
        for h in handles {
            h.join().expect("worker");
        }
        with_sink(rec.clone(), || crate::event!("boom"));
        let dumps = rec.take_dumps();
        assert_eq!(dumps.len(), 1);
        let d = &dumps[0];
        assert_eq!(d.events.len(), 4 * 8 + 1);
        assert!(d.events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(d.events.last().map(|r| r.event.name), Some("boom"));
        let threads: std::collections::BTreeSet<u64> = d.events.iter().map(|r| r.thread).collect();
        assert!(
            threads.len() >= 5,
            "expected 5 distinct threads: {threads:?}"
        );
    }
}
