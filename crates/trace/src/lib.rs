//! # magicdiv-trace — pipeline-wide tracing, explain-plan and metrics
//!
//! Every stage of the reproduction — strategy selection per Granlund &
//! Montgomery Figs 4.2/5.2/6.1/§9, IR lowering and optimization,
//! assembly/simulated execution, and the bench/verify harnesses — emits
//! structured records through this crate so a run can answer *why* a
//! plan was chosen, *what* each pass did and *where* cycles go.
//!
//! Five pieces:
//!
//! * **Events and spans** ([`Event`], [`span`], [`event!`]) — typed
//!   records with static names and key/value fields, nested by spans;
//! * **Sinks** ([`Sink`]) — [`TextTreeSink`] (human-readable indented
//!   tree, the `magic explain` renderer), [`JsonlSink`] (machine-readable
//!   JSON Lines), [`MetricsSink`] (aggregation into a registry),
//!   [`CaptureSink`] (programmatic inspection in tests), [`NullSink`];
//! * **Metrics** ([`Counter`], [`Histogram`], [`Registry`],
//!   [`MetricsSnapshot`]) — atomic counters and power-of-two histograms
//!   the bench/verify bins serialize into their JSON reports;
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded per-thread
//!   ring of recent events that snapshots a [`BlackboxDump`] when a
//!   fault-signal event (guard demotion, cache poisoning) fires;
//! * **Exposition** ([`render_exposition`]) — the Prometheus-style text
//!   rendering of a registry snapshot served by `magic metrics`.
//!
//! Sinks are installed per-thread ([`with_sink`] / [`install`]); with
//! none installed, [`enabled`] is `false` and instrumentation reduces to
//! one thread-local read, so the batch hot paths cost nothing when
//! tracing is off.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use magicdiv_trace::{span, with_sink, TextTreeSink};
//!
//! let sink = Arc::new(TextTreeSink::new());
//! with_sink(sink.clone(), || {
//!     let _plan = span("plan.udiv");
//!     magicdiv_trace::event!("plan.decision",
//!         "strategy" => "mul_shift", "paper" => "Fig 4.2");
//! });
//! let tree = sink.finish();
//! assert!(tree.contains("plan.udiv\n  plan.decision"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod expo;
mod metrics;
mod recorder;
mod sink;

pub use crate::event::{json_string, Event, Field, Value};
pub use crate::expo::{render_exposition, ExpositionOptions};
pub use crate::metrics::{
    BucketCount, Counter, Histogram, HistogramSnapshot, MetricsSink, MetricsSnapshot, Registry,
    DEFAULT_REGISTRY_CAPACITY,
};
pub use crate::recorder::{
    BlackboxDump, FlightRecorder, RecordedEvent, DEFAULT_BLACKBOX_TRIGGERS,
    DEFAULT_RECORDER_CAPACITY,
};
pub use crate::sink::{
    emit, enabled, install, span, with_sink, CaptureSink, InstallGuard, JsonlSink, NullSink, Sink,
    SpanGuard, TextTreeSink,
};
