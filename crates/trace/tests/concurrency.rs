//! Concurrency coverage for the thread-local dispatcher: `SpanGuard`
//! nesting stays balanced, and a single shared `CaptureSink` fed by
//! many emitter threads neither corrupts records nor reorders any one
//! thread's events.

use std::sync::{Arc, Barrier, Mutex};

use magicdiv_trace::{emit, event, span, with_sink, CaptureSink, Event, Sink};

/// A sink recording `(depth, name)` for spans and events, to assert on
/// nesting depth (CaptureSink drops the depth).
#[derive(Default)]
struct DepthSink {
    records: Mutex<Vec<(u32, String)>>,
}

impl DepthSink {
    fn records(&self) -> Vec<(u32, String)> {
        self.records.lock().unwrap().clone()
    }
}

impl Sink for DepthSink {
    fn event(&self, depth: u32, event: &Event) {
        self.records
            .lock()
            .unwrap()
            .push((depth, format!("event:{}", event.name)));
    }
    fn span_enter(&self, depth: u32, name: &'static str) {
        self.records
            .lock()
            .unwrap()
            .push((depth, format!("enter:{name}")));
    }
    fn span_exit(&self, depth: u32, name: &'static str) {
        self.records
            .lock()
            .unwrap()
            .push((depth, format!("exit:{name}")));
    }
}

#[test]
fn span_nesting_depths_are_balanced() {
    let sink = Arc::new(DepthSink::default());
    with_sink(sink.clone(), || {
        let _a = span("a");
        {
            let _b = span("b");
            emit(Event::new("deep"));
            {
                let _c = span("c");
                emit(Event::new("deeper"));
            }
        }
        emit(Event::new("shallow"));
    });
    let got = sink.records();
    let want = vec![
        (0, "enter:a".to_string()),
        (1, "enter:b".to_string()),
        (2, "event:deep".to_string()),
        (2, "enter:c".to_string()),
        (3, "event:deeper".to_string()),
        (2, "exit:c".to_string()),
        (1, "exit:b".to_string()),
        (1, "event:shallow".to_string()),
        (0, "exit:a".to_string()),
    ];
    assert_eq!(got, want);
}

#[test]
fn early_guard_drop_does_not_underflow_depth() {
    let sink = Arc::new(DepthSink::default());
    with_sink(sink.clone(), || {
        let a = span("a");
        drop(a);
        drop(span("again"));
        emit(Event::new("top"));
    });
    let got = sink.records();
    assert_eq!(got.last(), Some(&(0, "event:top".to_string())));
}

#[test]
fn span_depth_is_per_thread() {
    // A deep span stack on one thread must not indent another thread's
    // records: DEPTH is thread-local state.
    let sink = Arc::new(DepthSink::default());
    let barrier = Arc::new(Barrier::new(2));
    let deep = {
        let (sink, barrier) = (sink.clone(), barrier.clone());
        std::thread::spawn(move || {
            with_sink(sink, || {
                let _a = span("deep.a");
                let _b = span("deep.b");
                barrier.wait(); // depth 2 held while the peer emits
                barrier.wait();
            });
        })
    };
    let flat = {
        let (sink, barrier) = (sink.clone(), barrier.clone());
        std::thread::spawn(move || {
            barrier.wait();
            with_sink(sink, || emit(Event::new("flat")));
            barrier.wait();
        })
    };
    deep.join().unwrap();
    flat.join().unwrap();
    let flat_depth = sink
        .records()
        .iter()
        .find(|(_, n)| n == "event:flat")
        .map(|(d, _)| *d);
    assert_eq!(flat_depth, Some(0));
}

#[test]
fn shared_capture_sink_under_concurrent_emitters() {
    const THREADS: u64 = 8;
    const EVENTS_PER_THREAD: u64 = 500;

    let sink = Arc::new(CaptureSink::new());
    let barrier = Arc::new(Barrier::new(THREADS as usize));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let sink = sink.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            with_sink(sink, || {
                for i in 0..EVENTS_PER_THREAD {
                    // Both fields identify the emitter, so a torn or
                    // cross-thread-mixed record is detectable.
                    event!("work", "t" => t, "i" => i, "tag" => t * 1_000_000 + i);
                }
            });
        }));
    }
    for h in handles {
        h.join().unwrap();
    }

    let events = sink.events();
    assert_eq!(events.len(), (THREADS * EVENTS_PER_THREAD) as usize);

    let field = |e: &Event, key: &str| -> u64 {
        match e.get(key) {
            Some(v) => v.to_json().parse().unwrap(),
            None => panic!("missing field {key} on {e}"),
        }
    };
    // No interleaving corruption: every record is internally consistent.
    for e in &events {
        assert_eq!(e.name, "work");
        assert_eq!(e.fields.len(), 3);
        let (t, i, tag) = (field(e, "t"), field(e, "i"), field(e, "tag"));
        assert_eq!(tag, t * 1_000_000 + i, "torn record: t={t} i={i} tag={tag}");
    }
    // Per-thread ordering holds: thread t's events appear with strictly
    // increasing i in the shared capture order.
    for t in 0..THREADS {
        let seq: Vec<u64> = events
            .iter()
            .filter(|e| field(e, "t") == t)
            .map(|e| field(e, "i"))
            .collect();
        assert_eq!(seq.len(), EVENTS_PER_THREAD as usize);
        assert!(
            seq.windows(2).all(|w| w[0] < w[1]),
            "thread {t} order violated"
        );
    }
}

#[test]
fn concurrent_spans_keep_sink_installation_isolated() {
    // Each thread installs its own capture; nothing leaks across.
    let mut handles = Vec::new();
    for t in 0..4u64 {
        handles.push(std::thread::spawn(move || {
            let sink = Arc::new(CaptureSink::new());
            with_sink(sink.clone(), || {
                let _s = span("local");
                for i in 0..50u64 {
                    event!("mine", "t" => t, "i" => i);
                }
            });
            let events = sink.events();
            assert_eq!(events.len(), 50);
            assert!(events
                .iter()
                .all(|e| e.get("t").map(|v| v.to_json()) == Some(t.to_string())));
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}
