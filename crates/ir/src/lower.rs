//! Lowering division plans to IR.
//!
//! The planning layer in [`magicdiv::plan`] decides *which* code shape a
//! divisor gets (Fig 4.2, 5.2, 6.1, §9); this module decides what that
//! shape *is* in Table 3.1 operations. Each `lower_*` function appends the
//! straight-line sequence for one plan to a [`Builder`] and returns the
//! result register; callers (the generators in `magicdiv-codegen`) wrap
//! the sequence in a [`Program`](crate::Program) and run the optimizer.
//!
//! Because the same plan drives both the runtime divisors and this
//! lowering, the two layers cannot disagree about strategy — the
//! differential tests in the workspace assert exactly that.
//!
//! # Examples
//!
//! ```
//! use magicdiv::plan::UdivPlan;
//! use magicdiv_ir::{lower_udiv, optimize, Builder};
//!
//! let plan = UdivPlan::new(10, 32).unwrap();
//! let mut b = Builder::new(32, 1);
//! let n = b.arg(0);
//! let q = lower_udiv(&mut b, n, &plan);
//! let prog = optimize(&b.finish([q]));
//! assert_eq!(prog.eval1(&[1234]).unwrap(), 123);
//! ```

use magicdiv::plan::FloorStrategy;
use magicdiv::plan::{
    DivisibilityPlan, DivisibilityStrategy, DwordPlan, ExactPlan, FloorPlan, SdivPlan,
    SdivStrategy, UdivPlan, UdivStrategy, UremPlan, UremStrategy,
};

use crate::program::{Builder, Op, Reg};

fn check_width(b: &Builder, plan_width: u32) {
    assert_eq!(
        b.width(),
        plan_width,
        "plan width does not match builder width"
    );
}

/// Lowers a Figure 4.2 unsigned-division plan: `q = ⌊n / d⌋`.
pub fn lower_udiv(b: &mut Builder, n: Reg, plan: &UdivPlan) -> Reg {
    check_width(b, plan.width());
    match plan.strategy() {
        UdivStrategy::Identity => n,
        UdivStrategy::Shift { sh } => b.push(Op::Srl(n, sh)),
        UdivStrategy::MulShift { m, sh_pre, sh_post } => {
            // q = SRL(MULUH(m, SRL(n, sh_pre)), sh_post)
            let mreg = b.constant(m as u64);
            let n_pre = if sh_pre > 0 {
                b.push(Op::Srl(n, sh_pre))
            } else {
                n
            };
            let hi = b.push(Op::MulUH(mreg, n_pre));
            if sh_post > 0 {
                b.push(Op::Srl(hi, sh_post))
            } else {
                hi
            }
        }
        UdivStrategy::MulAddShift {
            m_minus_pow2n,
            sh_post,
        } => {
            // Fig 4.1 long sequence: t1 = MULUH(m - 2^N, n);
            // q = SRL(t1 + SRL(n - t1, 1), sh_post - 1).
            let mreg = b.constant(m_minus_pow2n as u64);
            let t1 = b.push(Op::MulUH(mreg, n));
            let diff = b.push(Op::Sub(n, t1));
            let half = b.push(Op::Srl(diff, 1));
            let sum = b.push(Op::Add(t1, half));
            if sh_post > 1 {
                b.push(Op::Srl(sum, sh_post - 1))
            } else {
                sum
            }
        }
        UdivStrategy::MulRoundUp { m, sh_post } => {
            // Round-up variant (Li, arXiv 2412.03680):
            // q = SRL(MULUH(m, n) + carry(MULL(m, n) + m), sh_post),
            // i.e. ⌊m(n+1) / 2^(N+sh_post)⌋ with the n+1 folded into a
            // carry so n = 2^N - 1 cannot overflow. The two multiplies
            // are independent, so they overlap on pipelined multipliers.
            let mreg = b.constant(m as u64);
            let t_lo = b.push(Op::MulL(mreg, n));
            let t_hi = b.push(Op::MulUH(mreg, n));
            let c = b.push(Op::Carry(t_lo, mreg));
            let sum = b.push(Op::Add(t_hi, c));
            if sh_post > 0 {
                b.push(Op::Srl(sum, sh_post))
            } else {
                sum
            }
        }
    }
}

/// Lowers a Figure 5.2 signed-division plan: `q = TRUNC(n / d)`.
pub fn lower_sdiv(b: &mut Builder, n: Reg, plan: &SdivPlan) -> Reg {
    check_width(b, plan.width());
    let width = b.width();
    let q = match plan.strategy() {
        SdivStrategy::Identity => n,
        SdivStrategy::Shift { l } => {
            // q = SRA(n + SRL(SRA(n, l-1), N-l), l)
            let sra = b.push(Op::Sra(n, l - 1));
            let srl = b.push(Op::Srl(sra, width - l));
            let biased = b.push(Op::Add(n, srl));
            b.push(Op::Sra(biased, l))
        }
        SdivStrategy::MulShift { m, sh_post } => {
            let mreg = b.constant(m as u64);
            let q0 = b.push(Op::MulSH(mreg, n));
            let shifted = if sh_post > 0 {
                b.push(Op::Sra(q0, sh_post))
            } else {
                q0
            };
            let sign = b.push(Op::Xsign(n));
            b.push(Op::Sub(shifted, sign))
        }
        SdivStrategy::MulAddShift {
            m_minus_pow2n,
            sh_post,
        } => {
            // m >= 2^(N-1): q0 = n + MULSH(m - 2^N, n)  (m - 2^N < 0)
            let mreg = b.constant(m_minus_pow2n as u64);
            let hi = b.push(Op::MulSH(mreg, n));
            let q0 = b.push(Op::Add(n, hi));
            let shifted = if sh_post > 0 {
                b.push(Op::Sra(q0, sh_post))
            } else {
                q0
            };
            let sign = b.push(Op::Xsign(n));
            b.push(Op::Sub(shifted, sign))
        }
    };
    if plan.negate() {
        b.push(Op::Neg(q))
    } else {
        q
    }
}

/// Lowers a Figure 6.1 floor-division plan: `q = ⌊n / d⌋` (signed).
pub fn lower_floor_div(b: &mut Builder, n: Reg, plan: &FloorPlan) -> Reg {
    check_width(b, plan.width());
    match plan.strategy() {
        FloorStrategy::Identity => n,
        FloorStrategy::Shift { l } => b.push(Op::Sra(n, l)),
        FloorStrategy::MulShift { m, sh_post } => {
            // Fig 6.1: nsign = XSIGN(n); q0 = MULUH(m, EOR(nsign, n));
            // q = EOR(nsign, SRL(q0, sh_post)).
            let nsign = b.push(Op::Xsign(n));
            let folded = b.push(Op::Eor(nsign, n));
            let mreg = b.constant(m as u64);
            let q0 = b.push(Op::MulUH(mreg, folded));
            let shifted = if sh_post > 0 {
                b.push(Op::Srl(q0, sh_post))
            } else {
                q0
            };
            b.push(Op::Eor(nsign, shifted))
        }
        FloorStrategy::NegativeTrunc { trunc } => {
            // trunc quotient, then branch-free correction:
            // q_floor = q_trunc - (r > 0)   [for d < 0, a nonzero
            // remainder has the dividend's sign].
            let qt = lower_sdiv(b, n, &trunc);
            let dreg = b.constant(plan.divisor() as u64);
            let prod = b.push(Op::MulL(qt, dreg));
            let r = b.push(Op::Sub(n, prod));
            let zero = b.constant(0);
            let rpos = b.push(Op::SltS(zero, r));
            b.push(Op::Sub(qt, rpos))
        }
    }
}

/// Lowers a §9 exact-division plan (`n` known divisible by `d`): one
/// `MULL` and one shift, plus a negation for signed `d < 0`.
pub fn lower_exact_div(b: &mut Builder, n: Reg, plan: &ExactPlan) -> Reg {
    check_width(b, plan.width());
    let q0 = if plan.is_pow2() {
        n
    } else {
        let inv = b.constant(plan.inverse() as u64);
        b.push(Op::MulL(inv, n))
    };
    let e = plan.pre_shift();
    let q1 = if e == 0 {
        q0
    } else if plan.is_signed() {
        b.push(Op::Sra(q0, e))
    } else {
        b.push(Op::Srl(q0, e))
    };
    if plan.negate() {
        b.push(Op::Neg(q1))
    } else {
        q1
    }
}

/// Lowers a Figure 8.1 doubleword-division plan: `(q, r)` of the `2N`-bit
/// dividend `hi:lo` divided by the plan's invariant word divisor.
///
/// The `2N`-bit intermediate values of Fig 8.1 (`t = m'·(n2 - n1) + nadj`
/// and `dr = n - (q1 + 1)·d`) are decomposed over word limbs using
/// [`Op::Carry`] to propagate between halves; shift counts that would
/// equal `N` (the paper's note about shift counts of `N` when `l = N`)
/// are specialized away at lowering time, since the plan's `l` is a
/// compile-time constant.
///
/// The caller must ensure `hi < d` (the Fig 8.1 quotient-fits-one-word
/// precondition); the lowered code has no trap and silently wraps
/// otherwise, exactly like hardware `divlu`-style instructions without
/// their overflow check.
///
/// # Examples
///
/// ```
/// use magicdiv::plan::DwordPlan;
/// use magicdiv_ir::{lower_dword_div, optimize, Builder};
///
/// let plan = DwordPlan::new(10, 32).unwrap();
/// let mut b = Builder::new(32, 2);
/// let (hi, lo) = (b.arg(0), b.arg(1));
/// let (q, r) = lower_dword_div(&mut b, hi, lo, &plan);
/// let prog = optimize(&b.finish([q, r]));
/// // (7 * 2^32 + 6) / 10:
/// let n = (7u64 << 32) + 6;
/// assert_eq!(prog.eval(&[7, 6]).unwrap(), vec![n / 10, n % 10]);
/// ```
pub fn lower_dword_div(b: &mut Builder, hi: Reg, lo: Reg, plan: &DwordPlan) -> (Reg, Reg) {
    check_width(b, plan.width());
    let width = b.width();
    let l = plan.l();
    let d = b.constant(plan.divisor() as u64);
    // n2 = SLL(hi, N-l) + SRL(lo, l): the top N bits of the normalized
    // dividend. When l == N both shifts degenerate (SLL by 0, SRL by N)
    // and n2 is just hi.
    let n2 = if l == width {
        hi
    } else {
        let hi_part = b.push(Op::Sll(hi, width - l));
        let lo_part = b.push(Op::Srl(lo, l));
        b.push(Op::Add(hi_part, lo_part))
    };
    // n10 = SLL(lo, N-l); its sign bit is the n1 digit of Fig 8.1.
    let n10 = if l == width {
        lo
    } else {
        b.push(Op::Sll(lo, width - l))
    };
    let n1_mask = b.push(Op::Xsign(n10));
    // nadj = n10 + AND(n1, d_norm - 2^N); the -2^N vanishes mod 2^N.
    let d_norm = b.constant(plan.d_norm() as u64);
    let adj = b.push(Op::And(n1_mask, d_norm));
    let nadj = b.push(Op::Add(n10, adj));
    // t = m' * (n2 - n1) + nadj, a 2N-bit value split over two words:
    // only HIGH(t) is needed, so the low half contributes just its carry.
    let m_prime = b.constant(plan.m_prime() as u64);
    let x = b.push(Op::Sub(n2, n1_mask)); // n2 - n1_mask = n2 + n1
    let t_lo = b.push(Op::MulL(m_prime, x));
    let t_hi = b.push(Op::MulUH(m_prime, x));
    let t_carry = b.push(Op::Carry(t_lo, nadj));
    let t_top = b.push(Op::Add(t_hi, t_carry));
    // q1 = n2 + HIGH(t).
    let q1 = b.push(Op::Add(n2, t_top));
    // dr = n - 2^N*d + (2^N - 1 - q1)*d = n - (q1 + 1)*d, computed over
    // limbs: LOW(dr) = lo + LOW(~q1 * d); HIGH(dr) = hi - d + HIGH(~q1 *
    // d) + carry.
    let not_q1 = b.push(Op::Not(q1));
    let p_lo = b.push(Op::MulL(not_q1, d));
    let p_hi = b.push(Op::MulUH(not_q1, d));
    let dr_lo = b.push(Op::Add(lo, p_lo));
    let dr_carry = b.push(Op::Carry(lo, p_lo));
    let hi_minus_d = b.push(Op::Sub(hi, d));
    let dr_hi_partial = b.push(Op::Add(hi_minus_d, p_hi));
    let dr_hi = b.push(Op::Add(dr_hi_partial, dr_carry));
    // HIGH(dr) is all-ones when dr < 0 (|dr| < d < 2^N), else zero:
    // q = q1 + 1 + HIGH(dr) = HIGH(dr) - ~q1; r = LOW(dr) + AND(d, HIGH(dr)).
    let q = b.push(Op::Sub(dr_hi, not_q1));
    let r_fix = b.push(Op::And(d, dr_hi));
    let r = b.push(Op::Add(dr_lo, r_fix));
    (q, r)
}

/// Lowers a remainder plan: `r = n mod d`.
///
/// The mask and multiply-back arms reuse the quotient lowering; the
/// Lemire–Kaser–Kurz fraction arm forms the low `2N` bits of `n·c` over
/// two limbs and scales them by `d`, propagating between halves with
/// [`Op::Carry`] exactly as the Fig 8.1 doubleword lowering does. Its
/// three leading multiplies are mutually independent, so they overlap
/// on pipelined multipliers.
pub fn lower_urem(b: &mut Builder, n: Reg, plan: &UremPlan) -> Reg {
    check_width(b, plan.width());
    match plan.strategy() {
        UremStrategy::Mask { low_mask } => {
            let m = b.constant(low_mask as u64);
            b.push(Op::And(n, m))
        }
        UremStrategy::Fraction { c_hi, c_lo } => {
            // frac = (n * c) mod 2^2N, two N-bit limbs.
            let c_lo_reg = b.constant(c_lo as u64);
            let c_hi_reg = b.constant(c_hi as u64);
            let d = b.constant(plan.divisor() as u64);
            let frac_lo = b.push(Op::MulL(c_lo_reg, n));
            let t_hi = b.push(Op::MulUH(c_lo_reg, n));
            let t2 = b.push(Op::MulL(c_hi_reg, n));
            let frac_hi = b.push(Op::Add(t_hi, t2));
            // r = ⌊frac * d / 2^2N⌋ = HIGH(frac_hi * d) plus the carry
            // out of LOW(frac_hi * d) + HIGH(frac_lo * d).
            let borrow = b.push(Op::MulUH(frac_lo, d));
            let p_lo = b.push(Op::MulL(frac_hi, d));
            let p_hi = b.push(Op::MulUH(frac_hi, d));
            let carry = b.push(Op::Carry(p_lo, borrow));
            b.push(Op::Add(p_hi, carry))
        }
        UremStrategy::MulBack { udiv } => {
            let q = lower_udiv(
                b,
                n,
                &UdivPlan::from_raw(plan.divisor(), plan.width(), udiv),
            );
            let d = b.constant(plan.divisor() as u64);
            let prod = b.push(Op::MulL(q, d));
            b.push(Op::Sub(n, prod))
        }
    }
}

/// Lowers a divisibility-test plan: the result register holds 1 when
/// `d | n`, else 0, with no remainder computed (§9 rotate test / LKK §3).
pub fn lower_divisibility(b: &mut Builder, n: Reg, plan: &DivisibilityPlan) -> Reg {
    check_width(b, plan.width());
    let width = b.width();
    match plan.strategy() {
        DivisibilityStrategy::Mask { low_mask } => {
            // Power of two: test the low bits.
            let m = b.constant(low_mask as u64);
            let low = b.push(Op::And(n, m));
            let zero = b.constant(0);
            // low == 0  <=>  !(0 < low)
            let ne = b.push(Op::SltU(zero, low));
            let one = b.constant(1);
            b.push(Op::Sub(one, ne))
        }
        DivisibilityStrategy::InverseRotate { e, dinv, qmax } => {
            let inv = b.constant(dinv as u64);
            let q0 = b.push(Op::MulL(inv, n));
            // Rotate right by e: OR(SRL(q0, e), SLL(q0, N - e)).
            let rotated = if e == 0 {
                q0
            } else {
                let lo = b.push(Op::Srl(q0, e));
                let hi = b.push(Op::Sll(q0, width - e));
                b.push(Op::Or(lo, hi))
            };
            let qmax = b.constant(qmax as u64);
            // divisible <=> rotated <= qmax <=> !(qmax < rotated)
            let gt = b.push(Op::SltU(qmax, rotated));
            let one = b.constant(1);
            b.push(Op::Sub(one, gt))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::mask;
    use crate::opt::optimize;

    fn udiv_prog(d: u64, width: u32) -> crate::program::Program {
        let plan = UdivPlan::new(d as u128, width).unwrap();
        let mut b = Builder::new(width, 1);
        let n = b.arg(0);
        let q = lower_udiv(&mut b, n, &plan);
        optimize(&b.finish([q]))
    }

    #[test]
    fn lowered_udiv_exhaustive_width8() {
        for d in 1u64..=255 {
            let prog = udiv_prog(d, 8);
            for n in 0u64..=255 {
                assert_eq!(prog.eval1(&[n]).unwrap(), n / d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn lowered_sdiv_spot_checks() {
        for d in [-10i64, -3, -1, 1, 3, 7, 10, 16] {
            let plan = SdivPlan::new(d as i128, 32).unwrap();
            let mut b = Builder::new(32, 1);
            let n = b.arg(0);
            let q = lower_sdiv(&mut b, n, &plan);
            let prog = optimize(&b.finish([q]));
            let m = mask(32);
            for n in [0i64, 1, -1, 12345, -12345, i32::MAX as i64, i32::MIN as i64] {
                let expect = (n as i32).wrapping_div(d as i32) as u64 & m;
                assert_eq!(prog.eval1(&[n as u64 & m]).unwrap(), expect, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn lowered_exact_and_divisibility() {
        let plan = ExactPlan::new_unsigned(12, 32).unwrap();
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let q = lower_exact_div(&mut b, n, &plan);
        let prog = optimize(&b.finish([q]));
        assert_eq!(prog.eval1(&[144]).unwrap(), 12);

        let plan = DivisibilityPlan::new(12, 32).unwrap();
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let ok = lower_divisibility(&mut b, n, &plan);
        let prog = optimize(&b.finish([ok]));
        assert_eq!(prog.eval1(&[144]).unwrap(), 1);
        assert_eq!(prog.eval1(&[145]).unwrap(), 0);
    }

    fn urem_prog(plan: &UremPlan, width: u32) -> crate::program::Program {
        let mut b = Builder::new(width, 1);
        let n = b.arg(0);
        let r = lower_urem(&mut b, n, plan);
        optimize(&b.finish([r]))
    }

    #[test]
    fn lowered_urem_exhaustive_width8_both_paths() {
        for d in 1u64..=255 {
            let mulback = urem_prog(&UremPlan::new(d as u128, 8).unwrap(), 8);
            let direct = urem_prog(&UremPlan::new_direct(d as u128, 8).unwrap(), 8);
            for n in 0u64..=255 {
                assert_eq!(mulback.eval1(&[n]).unwrap(), n % d, "mulback n={n} d={d}");
                assert_eq!(direct.eval1(&[n]).unwrap(), n % d, "direct n={n} d={d}");
            }
        }
    }

    #[test]
    fn lowered_urem_spot_checks_width32() {
        for d in [3u64, 7, 10, 641, 1_000_000_007, u32::MAX as u64] {
            let direct = urem_prog(&UremPlan::new_direct(d as u128, 32).unwrap(), 32);
            for n in [
                0u64,
                1,
                d - 1,
                d,
                d + 1,
                u32::MAX as u64 - 1,
                u32::MAX as u64,
            ] {
                let n = n & 0xffff_ffff;
                assert_eq!(direct.eval1(&[n]).unwrap(), n % d, "n={n} d={d}");
            }
        }
    }

    #[test]
    fn lowered_divisibility_exhaustive_width8() {
        for d in 1u64..=255 {
            let plan = DivisibilityPlan::new(d as u128, 8).unwrap();
            let mut b = Builder::new(8, 1);
            let n = b.arg(0);
            let ok = lower_divisibility(&mut b, n, &plan);
            let prog = optimize(&b.finish([ok]));
            for n in 0u64..=255 {
                assert_eq!(
                    prog.eval1(&[n]).unwrap(),
                    u64::from(n % d == 0),
                    "n={n} d={d}"
                );
            }
        }
    }

    fn dword_prog(d: u64, width: u32) -> crate::program::Program {
        let plan = DwordPlan::new(d as u128, width).unwrap();
        let mut b = Builder::new(width, 2);
        let (hi, lo) = (b.arg(0), b.arg(1));
        let (q, r) = lower_dword_div(&mut b, hi, lo, &plan);
        optimize(&b.finish([q, r]))
    }

    #[test]
    fn lowered_dword_exhaustive_width8() {
        // Every divisor (including 2^8 - 1, where l == N and the shifts
        // degenerate), dividends sampled densely over the valid range
        // hi < d.
        for d in 1u64..=255 {
            let prog = dword_prog(d, 8);
            for n in (0u64..(d << 8)).step_by(5) {
                let (hi, lo) = (n >> 8, n & 0xff);
                assert_eq!(
                    prog.eval(&[hi, lo]).unwrap(),
                    vec![n / d, n % d],
                    "n={n} d={d}"
                );
            }
            // The largest valid dividend: d * 2^8 - 1.
            let top = (d << 8) - 1;
            assert_eq!(
                prog.eval(&[top >> 8, top & 0xff]).unwrap(),
                vec![top / d, top % d],
                "d={d}"
            );
        }
    }

    #[test]
    fn lowered_dword_spot_checks_width32() {
        for d in [1u64, 3, 10, 641, 0x7fff_ffff, 0x8000_0000, 0xffff_ffff] {
            let prog = dword_prog(d, 32);
            for n in [0u64, 1, 9, 10, u32::MAX as u64, 1 << 40, (d << 32) - 1] {
                if n >> 32 >= d {
                    continue;
                }
                assert_eq!(
                    prog.eval(&[n >> 32, n & 0xffff_ffff]).unwrap(),
                    vec![n / d, n % d],
                    "n={n} d={d}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "plan width")]
    fn width_mismatch_panics() {
        let plan = UdivPlan::new(10, 32).unwrap();
        let mut b = Builder::new(16, 1);
        let n = b.arg(0);
        let _ = lower_udiv(&mut b, n, &plan);
    }
}
