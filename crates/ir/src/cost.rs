//! Operation-count accounting.
//!
//! The paper reports its code sequences' costs as operation counts ("1
//! multiply, 2 adds/subtracts, and 2 shifts per quotient" for Fig 4.1);
//! [`OpCounts`] tallies a program the same way so tests can assert the
//! counts match, and the CPU simulator can price a program against a
//! timing model.

use core::fmt;
use core::ops::Add;

use crate::program::{Op, Program};

/// The cost class of an operation, mirroring how the paper (and Table 1.1)
/// prices instructions.
// Exhaustive on purpose: simulators must price every class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Constant/argument materialization (usually folded into other ops;
    /// the paper excludes these from its counts too).
    Nop,
    /// Add, subtract, negate.
    AddSub,
    /// Constant shifts and `XSIGN`.
    Shift,
    /// AND/OR/EOR/NOT.
    BitOp,
    /// Compare (set-less-than).
    Cmp,
    /// Low product half (`MULL`).
    MulLow,
    /// Upper product half (`MULUH`/`MULSH`).
    MulHigh,
    /// Hardware divide or remainder.
    Div,
}

impl OpClass {
    /// A stable snake_case name for reports and trace events.
    pub fn name(&self) -> &'static str {
        match self {
            OpClass::Nop => "nop",
            OpClass::AddSub => "add_sub",
            OpClass::Shift => "shift",
            OpClass::BitOp => "bit_op",
            OpClass::Cmp => "cmp",
            OpClass::MulLow => "mul_low",
            OpClass::MulHigh => "mul_high",
            OpClass::Div => "div",
        }
    }

    /// All classes, in pricing order.
    pub const ALL: [OpClass; 8] = [
        OpClass::Nop,
        OpClass::AddSub,
        OpClass::Shift,
        OpClass::BitOp,
        OpClass::Cmp,
        OpClass::MulLow,
        OpClass::MulHigh,
        OpClass::Div,
    ];

    /// Index of this class within [`OpClass::ALL`].
    pub fn index(&self) -> usize {
        match self {
            OpClass::Nop => 0,
            OpClass::AddSub => 1,
            OpClass::Shift => 2,
            OpClass::BitOp => 3,
            OpClass::Cmp => 4,
            OpClass::MulLow => 5,
            OpClass::MulHigh => 6,
            OpClass::Div => 7,
        }
    }
}

impl Op {
    /// The cost class of this operation.
    pub fn class(&self) -> OpClass {
        use Op::*;
        match self {
            Arg(_) | Const(_) => OpClass::Nop,
            Add(..) | Sub(..) | Neg(..) | Carry(..) | Borrow(..) => OpClass::AddSub,
            Sll(..) | Srl(..) | Sra(..) | Xsign(..) => OpClass::Shift,
            And(..) | Or(..) | Eor(..) | Not(..) => OpClass::BitOp,
            SltS(..) | SltU(..) => OpClass::Cmp,
            MulL(..) => OpClass::MulLow,
            MulUH(..) | MulSH(..) => OpClass::MulHigh,
            DivU(..) | DivS(..) | RemU(..) | RemS(..) => OpClass::Div,
        }
    }
}

/// Operation counts for a program, grouped by [`OpClass`].
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{Builder, Op};
///
/// let mut b = Builder::new(32, 1);
/// let n = b.arg(0);
/// let m = b.constant(0xcccc_cccd);
/// let h = b.push(Op::MulUH(m, n));
/// let q = b.push(Op::Srl(h, 3));
/// let counts = b.finish([q]).op_counts();
/// assert_eq!(counts.mul_high, 1);
/// assert_eq!(counts.shift, 1);
/// assert_eq!(counts.total_executed(), 2); // constants aren't counted
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct OpCounts {
    /// Adds, subtracts, negates.
    pub add_sub: u32,
    /// Shifts (incl. `XSIGN`).
    pub shift: u32,
    /// Bitwise operations.
    pub bit_op: u32,
    /// Compares.
    pub cmp: u32,
    /// `MULL` instructions.
    pub mul_low: u32,
    /// `MULUH`/`MULSH` instructions.
    pub mul_high: u32,
    /// Hardware divides/remainders.
    pub div: u32,
    /// Constants and arguments (not counted as executed work).
    pub nop: u32,
}

impl OpCounts {
    /// Total *executed* operations — everything except constants and
    /// arguments, matching the paper's per-quotient counts.
    pub fn total_executed(&self) -> u32 {
        self.add_sub + self.shift + self.bit_op + self.cmp + self.mul_low + self.mul_high + self.div
    }

    /// `true` when the program uses any multiply (either half).
    pub fn uses_multiply(&self) -> bool {
        self.mul_low + self.mul_high > 0
    }

    /// `true` when the program uses a hardware divide.
    pub fn uses_divide(&self) -> bool {
        self.div > 0
    }
}

impl Add for OpCounts {
    type Output = OpCounts;
    fn add(self, o: OpCounts) -> OpCounts {
        OpCounts {
            add_sub: self.add_sub + o.add_sub,
            shift: self.shift + o.shift,
            bit_op: self.bit_op + o.bit_op,
            cmp: self.cmp + o.cmp,
            mul_low: self.mul_low + o.mul_low,
            mul_high: self.mul_high + o.mul_high,
            div: self.div + o.div,
            nop: self.nop + o.nop,
        }
    }
}

impl fmt::Display for OpCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mul-high, {} mul-low, {} add/sub, {} shift, {} bit-op, {} cmp, {} div",
            self.mul_high, self.mul_low, self.add_sub, self.shift, self.bit_op, self.cmp, self.div
        )
    }
}

impl Program {
    /// Tallies operation counts by class.
    pub fn op_counts(&self) -> OpCounts {
        let mut c = OpCounts::default();
        for op in self.insts() {
            match op.class() {
                OpClass::Nop => c.nop += 1,
                OpClass::AddSub => c.add_sub += 1,
                OpClass::Shift => c.shift += 1,
                OpClass::BitOp => c.bit_op += 1,
                OpClass::Cmp => c.cmp += 1,
                OpClass::MulLow => c.mul_low += 1,
                OpClass::MulHigh => c.mul_high += 1,
                OpClass::Div => c.div += 1,
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn counts_figure_4_1_shape() {
        // Fig 4.1: t1 = MULUH(m', n); q = SRL(t1 + SRL(n - t1, sh1), sh2)
        // = 1 multiply, 2 adds/subtracts, 2 shifts.
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let m = b.constant(0x5555_5556);
        let t1 = b.push(Op::MulUH(m, n));
        let diff = b.push(Op::Sub(n, t1));
        let s1 = b.push(Op::Srl(diff, 1));
        let sum = b.push(Op::Add(t1, s1));
        let q = b.push(Op::Srl(sum, 1));
        let c = b.finish([q]).op_counts();
        assert_eq!(c.mul_high, 1);
        assert_eq!(c.add_sub, 2);
        assert_eq!(c.shift, 2);
        assert_eq!(c.total_executed(), 5);
        assert!(c.uses_multiply());
        assert!(!c.uses_divide());
    }

    #[test]
    fn add_combines() {
        let a = OpCounts {
            add_sub: 1,
            shift: 2,
            ..OpCounts::default()
        };
        let b = OpCounts {
            mul_high: 1,
            shift: 1,
            ..OpCounts::default()
        };
        let s = a + b;
        assert_eq!(s.shift, 3);
        assert_eq!(s.add_sub, 1);
        assert_eq!(s.mul_high, 1);
    }

    #[test]
    fn display_mentions_every_class() {
        let c = OpCounts::default();
        let s = c.to_string();
        for key in [
            "mul-high", "mul-low", "add/sub", "shift", "bit-op", "cmp", "div",
        ] {
            assert!(s.contains(key), "{s}");
        }
    }
}
