//! The machine-independent optimizer: constant folding, algebraic
//! simplification, common-subexpression elimination and dead-code
//! elimination.
//!
//! The paper (§3) notes that its code generators "may produce expressions
//! such as `SRL(x, 0)` or `(x − y)` [with a zero operand]; the optimizer
//! should make the obvious simplifications" — this module is that
//! optimizer, built as a single forward value-numbering pass iterated to a
//! fixed point, followed by DCE.

use std::collections::HashMap;

use crate::interp::{mask, sign_extend};
use crate::program::{Op, Program, Reg};

/// Optimizes a program: folds constants, applies algebraic identities,
/// shares common subexpressions and drops dead code. Semantics are
/// preserved exactly (verified by the property tests below and in the
/// integration suite).
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{optimize, Builder, Op};
///
/// let mut b = Builder::new(32, 1);
/// let x = b.arg(0);
/// let zero = b.constant(0);
/// let y = b.push(Op::Add(x, zero));   // x + 0
/// let z = b.push(Op::Srl(y, 0));      // >> 0
/// let p = b.finish([z]);
/// let opt = optimize(&p);
/// // Everything folds away; only the argument remains.
/// assert_eq!(opt.insts().len(), 1);
/// ```
pub fn optimize(program: &Program) -> Program {
    let _span = magicdiv_trace::span("ir.optimize");
    let mut current = program.clone();
    // Iterate simplify+CSE to a fixed point (each pass can expose more).
    for pass in 0..8 {
        let ops_before = current.insts().len();
        let (simplified, stats) = simplify_and_cse(&current);
        let next = dce(&simplified);
        let changed = next != current;
        magicdiv_trace::event!("ir.pass",
            "pass" => pass,
            "ops_before" => ops_before,
            "ops_after" => next.insts().len(),
            "folded" => stats.folded,
            "copy_propagated" => stats.copy_propagated,
            "cse_hits" => stats.cse_hits,
            "dce_removed" => simplified.insts().len() - next.insts().len(),
            "changed" => changed);
        if !changed {
            break;
        }
        current = next;
    }
    current
}

/// Rewrites fired by one [`simplify_and_cse`] pass, reported through the
/// `ir.pass` trace event.
#[derive(Default)]
struct PassStats {
    /// Operations folded to a `Const`.
    folded: usize,
    /// Operations replaced by an existing register (algebraic identity /
    /// copy propagation).
    copy_propagated: usize,
    /// Operations deduplicated by value numbering.
    cse_hits: usize,
}

/// One forward pass of constant folding, algebraic rewriting and value
/// numbering.
fn simplify_and_cse(program: &Program) -> (Program, PassStats) {
    let w = program.width();
    let m = mask(w);
    let mut out: Vec<Op> = Vec::with_capacity(program.insts().len());
    // Map from old register to new register.
    let mut remap: Vec<Reg> = Vec::with_capacity(program.insts().len());
    // Value numbering table over the *new* instruction list.
    let mut table: HashMap<Op, Reg> = HashMap::new();

    let mut stats = PassStats::default();

    let intern =
        |op: Op, out: &mut Vec<Op>, table: &mut HashMap<Op, Reg>, stats: &mut PassStats| -> Reg {
            if let Some(&r) = table.get(&op) {
                stats.cse_hits += 1;
                return r;
            }
            let r = Reg(out.len() as u32);
            out.push(op);
            table.insert(op, r);
            r
        };

    for op in program.insts() {
        let original = op.map_operands(|r| remap[r.index()]);
        // Constant value of a (new) register, if known.
        let const_of = |r: Reg| match out[r.index()] {
            Op::Const(c) => Some(c),
            _ => None,
        };
        let new_reg = match simplify_op(original, w, m, &const_of) {
            Rewrite::Use(r) => {
                stats.copy_propagated += 1;
                r
            }
            Rewrite::Emit(op) => {
                if matches!(op, Op::Const(_)) && !matches!(original, Op::Const(_)) {
                    stats.folded += 1;
                }
                intern(op, &mut out, &mut table, &mut stats)
            }
        };
        remap.push(new_reg);
    }

    let results = program.results().iter().map(|r| remap[r.index()]).collect();
    (
        Program::from_raw(w, program.arg_count(), out, results),
        stats,
    )
}

/// Result of rewriting one operation: either reuse an existing register
/// (copy propagation) or emit an operation (possibly folded to a `Const`).
enum Rewrite {
    Use(Reg),
    Emit(Op),
}

/// Rewrites one operation given operand constant-ness.
fn simplify_op(op: Op, w: u32, m: u64, const_of: &dyn Fn(Reg) -> Option<u64>) -> Rewrite {
    use Op::*;
    let fold2 = |a: Reg, b: Reg, f: &dyn Fn(u64, u64) -> Option<u64>| -> Option<u64> {
        match (const_of(a), const_of(b)) {
            (Some(x), Some(y)) => f(x, y).map(|v| v & m),
            _ => None,
        }
    };

    match op {
        Add(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x.wrapping_add(y))) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(0) {
                return Rewrite::Use(a);
            }
            if const_of(a) == Some(0) {
                return Rewrite::Use(b);
            }
            Rewrite::Emit(op)
        }
        Sub(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x.wrapping_sub(y))) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(0) {
                return Rewrite::Use(a);
            }
            if a == b {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        Neg(a) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const(x.wrapping_neg() & m)),
            None => Rewrite::Emit(op),
        },
        MulL(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x.wrapping_mul(y))) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(1) {
                return Rewrite::Use(a);
            }
            if const_of(a) == Some(1) {
                return Rewrite::Use(b);
            }
            if const_of(a) == Some(0) || const_of(b) == Some(0) {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        MulUH(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| {
                Some((((x as u128) * (y as u128)) >> w) as u64)
            }) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(a) == Some(0) || const_of(b) == Some(0) {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        MulSH(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| {
                Some((((sign_extend(x, w) as i128) * (sign_extend(y, w) as i128)) >> w) as u64)
            }) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(a) == Some(0) || const_of(b) == Some(0) {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        And(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x & y)) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(m) {
                return Rewrite::Use(a);
            }
            if const_of(a) == Some(m) {
                return Rewrite::Use(b);
            }
            if const_of(a) == Some(0) || const_of(b) == Some(0) {
                return Rewrite::Emit(Const(0));
            }
            if a == b {
                return Rewrite::Use(a);
            }
            Rewrite::Emit(op)
        }
        Or(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x | y)) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(0) {
                return Rewrite::Use(a);
            }
            if const_of(a) == Some(0) {
                return Rewrite::Use(b);
            }
            if a == b {
                return Rewrite::Use(a);
            }
            Rewrite::Emit(op)
        }
        Eor(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(x ^ y)) {
                return Rewrite::Emit(Const(v));
            }
            if const_of(b) == Some(0) {
                return Rewrite::Use(a);
            }
            if const_of(a) == Some(0) {
                return Rewrite::Use(b);
            }
            if a == b {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        Not(a) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const(!x & m)),
            None => Rewrite::Emit(op),
        },
        Sll(a, 0) | Srl(a, 0) | Sra(a, 0) => Rewrite::Use(a),
        Sll(a, n) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const((x << n) & m)),
            None => Rewrite::Emit(op),
        },
        Srl(a, n) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const(x >> n)),
            None => Rewrite::Emit(op),
        },
        Sra(a, n) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const((sign_extend(x, w) >> n) as u64 & m)),
            None => Rewrite::Emit(op),
        },
        Xsign(a) => match const_of(a) {
            Some(x) => Rewrite::Emit(Const((sign_extend(x, w) >> (w - 1).min(63)) as u64 & m)),
            None => Rewrite::Emit(op),
        },
        SltS(a, b) => fold2(a, b, &|x, y| {
            Some(u64::from(sign_extend(x, w) < sign_extend(y, w)))
        })
        .map(|v| Rewrite::Emit(Const(v)))
        .unwrap_or(Rewrite::Emit(op)),
        SltU(a, b) => fold2(a, b, &|x, y| Some(u64::from(x < y)))
            .map(|v| Rewrite::Emit(Const(v)))
            .unwrap_or(Rewrite::Emit(op)),
        Carry(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| {
                Some(u64::from(u128::from(x) + u128::from(y) > u128::from(m)))
            }) {
                return Rewrite::Emit(Const(v));
            }
            // x + 0 never carries.
            if const_of(a) == Some(0) || const_of(b) == Some(0) {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        Borrow(a, b) => {
            if let Some(v) = fold2(a, b, &|x, y| Some(u64::from(x < y))) {
                return Rewrite::Emit(Const(v));
            }
            // x - 0 and x - x never borrow.
            if const_of(b) == Some(0) || a == b {
                return Rewrite::Emit(Const(0));
            }
            Rewrite::Emit(op)
        }
        // Hardware division folds only when the divisor constant is
        // nonzero (folding a trap away would change semantics).
        DivU(a, b) => fold2(a, b, &|x, y| x.checked_div(y))
            .map(|v| Rewrite::Emit(Const(v)))
            .unwrap_or(Rewrite::Emit(op)),
        RemU(a, b) => fold2(a, b, &|x, y| x.checked_rem(y))
            .map(|v| Rewrite::Emit(Const(v)))
            .unwrap_or(Rewrite::Emit(op)),
        DivS(a, b) => fold2(a, b, &|x, y| {
            let (x, y) = (sign_extend(x, w), sign_extend(y, w));
            (y != 0).then(|| x.wrapping_div(y) as u64)
        })
        .map(|v| Rewrite::Emit(Const(v)))
        .unwrap_or(Rewrite::Emit(op)),
        RemS(a, b) => fold2(a, b, &|x, y| {
            let (x, y) = (sign_extend(x, w), sign_extend(y, w));
            (y != 0).then(|| x.wrapping_rem(y) as u64)
        })
        .map(|v| Rewrite::Emit(Const(v)))
        .unwrap_or(Rewrite::Emit(op)),
        Arg(_) | Const(_) => Rewrite::Emit(op),
    }
}

/// Dead-code elimination: keeps only instructions reachable from the
/// results, preserving argument slots (arguments are always retained so
/// the calling convention stays stable).
fn dce(program: &Program) -> Program {
    let n = program.insts().len();
    let mut live = vec![false; n];
    let mut stack: Vec<usize> = program.results().iter().map(|r| r.index()).collect();
    while let Some(i) = stack.pop() {
        if live[i] {
            continue;
        }
        live[i] = true;
        for r in program.insts()[i].operands() {
            stack.push(r.index());
        }
    }
    // Arguments always stay (they define the signature).
    for (i, op) in program.insts().iter().enumerate() {
        if matches!(op, Op::Arg(_)) {
            live[i] = true;
        }
    }
    let mut remap: Vec<Reg> = Vec::with_capacity(n);
    let mut out: Vec<Op> = Vec::new();
    for (i, op) in program.insts().iter().enumerate() {
        if live[i] {
            let new = Reg(out.len() as u32);
            out.push(op.map_operands(|r| remap[r.index()]));
            remap.push(new);
        } else {
            remap.push(Reg(u32::MAX)); // never read: not live, no live users
        }
    }
    let results = program.results().iter().map(|r| remap[r.index()]).collect();
    Program::from_raw(program.width(), program.arg_count(), out, results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn optimized_programs_validate() {
        let mut b = Builder::new(32, 2);
        let x = b.arg(0);
        let z = b.constant(0);
        let a = b.push(Op::Add(x, z));
        let s = b.push(Op::Srl(a, 0));
        let d = b.push(Op::MulUH(s, b.arg(1)));
        let prog = b.finish([d]);
        prog.validate().unwrap();
        optimize(&prog).validate().unwrap();
    }

    #[test]
    fn folds_constants() {
        let mut b = Builder::new(32, 0);
        let x = b.constant(6);
        let y = b.constant(7);
        let p = b.push(Op::MulL(x, y));
        let prog = b.finish([p]);
        let opt = optimize(&prog);
        assert_eq!(opt.insts(), &[Op::Const(42)]);
    }

    #[test]
    fn removes_zero_shifts_and_adds() {
        let mut b = Builder::new(32, 1);
        let x = b.arg(0);
        let z = b.constant(0);
        let a = b.push(Op::Add(x, z));
        let s = b.push(Op::Srl(a, 0));
        let prog = b.finish([s]);
        let opt = optimize(&prog);
        assert_eq!(opt.insts(), &[Op::Arg(0)]);
        assert_eq!(opt.results(), &[Reg(0)]);
    }

    #[test]
    fn cse_shares_subexpressions() {
        let mut b = Builder::new(32, 2);
        let (x, y) = (b.arg(0), b.arg(1));
        let s1 = b.push(Op::Add(x, y));
        let s2 = b.push(Op::Add(x, y));
        let prod = b.push(Op::MulL(s1, s2));
        let prog = b.finish([prod]);
        let opt = optimize(&prog);
        // add appears once, not twice.
        let adds = opt
            .insts()
            .iter()
            .filter(|o| matches!(o, Op::Add(..)))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn dce_drops_unused() {
        let mut b = Builder::new(32, 1);
        let x = b.arg(0);
        let _unused = b.push(Op::MulL(x, x));
        let keep = b.push(Op::Not(x));
        let prog = b.finish([keep]);
        let opt = optimize(&prog);
        assert!(opt.insts().iter().all(|o| !matches!(o, Op::MulL(..))));
    }

    #[test]
    fn does_not_fold_division_by_zero() {
        let mut b = Builder::new(32, 0);
        let one = b.constant(1);
        let zero = b.constant(0);
        let d = b.push(Op::DivU(one, zero));
        let prog = b.finish([d]);
        let opt = optimize(&prog);
        assert!(opt.insts().iter().any(|o| matches!(o, Op::DivU(..))));
        assert!(opt.eval(&[]).is_err());
    }

    #[test]
    fn x_minus_x_is_zero() {
        let mut b = Builder::new(32, 1);
        let x = b.arg(0);
        let z = b.push(Op::Sub(x, x));
        let prog = b.finish([z]);
        let opt = optimize(&prog);
        assert_eq!(opt.eval1(&[12345]).unwrap(), 0);
        assert!(opt.insts().iter().any(|o| matches!(o, Op::Const(0))));
    }

    #[test]
    fn preserves_semantics_on_magic_division_shape() {
        // The d = 10 sequence with a gratuitous +0 and >>0 sprinkled in.
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let zero = b.constant(0);
        let n2 = b.push(Op::Add(n, zero));
        let m = b.constant(0xcccc_cccd);
        let hi = b.push(Op::MulUH(m, n2));
        let hi2 = b.push(Op::Srl(hi, 0));
        let q = b.push(Op::Srl(hi2, 3));
        let prog = b.finish([q]);
        let opt = optimize(&prog);
        assert!(opt.insts().len() < prog.insts().len());
        for x in [0u64, 1, 9, 10, 1234, u32::MAX as u64] {
            assert_eq!(opt.eval1(&[x]).unwrap(), prog.eval1(&[x]).unwrap(), "{x}");
        }
        assert_eq!(opt.eval1(&[1234]).unwrap(), 123);
    }

    #[test]
    fn copy_of_argument_via_and_mask() {
        let mut b = Builder::new(16, 1);
        let x = b.arg(0);
        let ones = b.constant(0xffff);
        let a = b.push(Op::And(x, ones));
        let prog = b.finish([a]);
        let opt = optimize(&prog);
        assert_eq!(opt.insts(), &[Op::Arg(0)]);
    }

    #[test]
    fn fixed_point_reaches_deep_chains() {
        // ((x + 0) + 0) + 0 ... collapses fully.
        let mut b = Builder::new(32, 1);
        let mut cur = b.arg(0);
        let zero = b.constant(0);
        for _ in 0..10 {
            cur = b.push(Op::Add(cur, zero));
        }
        let prog = b.finish([cur]);
        let opt = optimize(&prog);
        assert_eq!(opt.insts(), &[Op::Arg(0)]);
    }
}
