//! Legalization: rewriting operations a target lacks using the §3
//! identities.
//!
//! The paper's assumed-instructions section gives substitutions for
//! machines missing part of Table 3.1:
//!
//! * no arithmetic right shift:
//!   `SRA(x, e) = SRL(x + 2^(N-1), e) - 2^(N-1-e)` for `0 < e <= N-1`;
//! * only one of `MULSH`/`MULUH`:
//!   `MULUH(x, y) = MULSH(x, y) + AND(x, XSIGN(y)) + AND(y, XSIGN(x))`
//!   (and the same identity solved the other way).
//!
//! [`legalize`] applies these so any program runs on a machine described
//! by [`TargetCaps`] — e.g. POWER/RIOS I, which Table 1.1 footnotes as
//! "signed only" (no unsigned multiply-high).

use crate::program::{Builder, Op, Program, Reg};

/// Which Table 3.1 operations a machine provides directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TargetCaps {
    /// Has `MULUH` (unsigned multiply-high).
    pub has_muluh: bool,
    /// Has `MULSH` (signed multiply-high).
    pub has_mulsh: bool,
    /// Has `SRA` (arithmetic right shift).
    pub has_sra: bool,
    /// Has carry/borrow-out as a value ([`Op::Carry`]/[`Op::Borrow`],
    /// e.g. via a flags register or add-with-carry). Without it the
    /// carry is recomputed: `CARRY(a, b) = SLTU(ADD(a, b), a)` and
    /// `BORROW(a, b) = SLTU(a, b)`.
    pub has_carry: bool,
}

impl TargetCaps {
    /// A machine with the full Table 3.1 set.
    pub const FULL: TargetCaps = TargetCaps {
        has_muluh: true,
        has_mulsh: true,
        has_sra: true,
        has_carry: true,
    };

    /// POWER/RIOS I per the Table 1.1 footnote: signed multiply-high
    /// only.
    pub const POWER_RIOS: TargetCaps = TargetCaps {
        has_muluh: false,
        has_mulsh: true,
        has_sra: true,
        has_carry: true,
    };
}

impl Default for TargetCaps {
    fn default() -> Self {
        TargetCaps::FULL
    }
}

/// Rewrites `prog` so it only uses operations `caps` provides, preserving
/// semantics exactly (verified exhaustively in the tests).
///
/// # Panics
///
/// Panics when `caps` has neither multiply-high (there is nothing to
/// synthesize the product's upper half from — the paper's fallback there
/// is §7's floating point, which is out of scope for an integer IR).
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{legalize, Builder, Op, TargetCaps};
///
/// let mut b = Builder::new(32, 2);
/// let h = b.push(Op::MulUH(b.arg(0), b.arg(1)));
/// let p = b.finish([h]);
/// let legal = legalize(&p, TargetCaps::POWER_RIOS);
/// assert!(legal.insts().iter().all(|o| !matches!(o, Op::MulUH(..))));
/// assert_eq!(legal.eval(&[7, 9]).unwrap(), p.eval(&[7, 9]).unwrap());
/// ```
pub fn legalize(prog: &Program, caps: TargetCaps) -> Program {
    assert!(
        caps.has_muluh || caps.has_mulsh,
        "a machine without any multiply-high cannot be legalized"
    );
    let w = prog.width();
    let mut b = Builder::new(w, prog.arg_count());
    let mut remap: Vec<Reg> = Vec::with_capacity(prog.insts().len());

    // XSIGN must itself be legal: it is short for SRA(x, N-1); without
    // SRA use the identity with e = N-1, or simply SRL + negate:
    // XSIGN(x) = -(SRL(x, N-1)) = 0 - (x >> (N-1)).
    let emit_xsign = |b: &mut Builder, x: Reg| -> Reg {
        if caps.has_sra {
            b.push(Op::Xsign(x))
        } else {
            let top = b.push(Op::Srl(x, w - 1));
            b.push(Op::Neg(top))
        }
    };
    let emit_sra = |b: &mut Builder, x: Reg, n: u32| -> Reg {
        if caps.has_sra || n == 0 {
            if n == 0 {
                return x;
            }
            b.push(Op::Sra(x, n))
        } else {
            // SRA(x, n) = SRL(x + 2^(N-1), n) - 2^(N-1-n).
            let bias = b.constant(1u64 << (w - 1));
            let biased = b.push(Op::Add(x, bias));
            let shifted = b.push(Op::Srl(biased, n));
            let unbias = b.constant(1u64 << (w - 1 - n));
            b.push(Op::Sub(shifted, unbias))
        }
    };
    // The §3 multiply-high bridge: high = other_high ± AND(x, XSIGN(y))
    // ± AND(y, XSIGN(x)).
    let emit_mul_fixups = |b: &mut Builder, x: Reg, y: Reg| -> (Reg, Reg) {
        let sx = if caps.has_sra {
            b.push(Op::Xsign(x))
        } else {
            let t = b.push(Op::Srl(x, w - 1));
            b.push(Op::Neg(t))
        };
        let sy = if caps.has_sra {
            b.push(Op::Xsign(y))
        } else {
            let t = b.push(Op::Srl(y, w - 1));
            b.push(Op::Neg(t))
        };
        let fx = b.push(Op::And(x, sy));
        let fy = b.push(Op::And(y, sx));
        (fx, fy)
    };

    for op in prog.insts() {
        let mapped = op.map_operands(|r| remap[r.index()]);
        let new_reg = match mapped {
            // The builder pre-declares argument instructions; map instead
            // of duplicating.
            Op::Arg(k) => b.arg(k),
            Op::MulUH(x, y) if !caps.has_muluh => {
                let sh = b.push(Op::MulSH(x, y));
                let (fx, fy) = emit_mul_fixups(&mut b, x, y);
                let t = b.push(Op::Add(sh, fx));
                b.push(Op::Add(t, fy))
            }
            Op::MulSH(x, y) if !caps.has_mulsh => {
                let uh = b.push(Op::MulUH(x, y));
                let (fx, fy) = emit_mul_fixups(&mut b, x, y);
                let t = b.push(Op::Sub(uh, fx));
                b.push(Op::Sub(t, fy))
            }
            Op::Sra(x, n) if !caps.has_sra => emit_sra(&mut b, x, n),
            Op::Xsign(x) if !caps.has_sra => emit_xsign(&mut b, x),
            Op::Carry(x, y) if !caps.has_carry => {
                // CARRY(a, b) = SLTU(a + b, a): the wrapped sum is smaller
                // than an addend exactly when the true sum overflowed.
                let sum = b.push(Op::Add(x, y));
                b.push(Op::SltU(sum, x))
            }
            Op::Borrow(x, y) if !caps.has_carry => b.push(Op::SltU(x, y)),
            other => b.push(other),
        };
        remap.push(new_reg);
    }
    let out = b.finish(prog.results().iter().map(|r| remap[r.index()]));
    magicdiv_trace::event!("ir.legalize",
        "ops_before" => prog.insts().len(), "ops_after" => out.insts().len(),
        "has_muluh" => caps.has_muluh, "has_mulsh" => caps.has_mulsh,
        "has_sra" => caps.has_sra, "has_carry" => caps.has_carry,
        "paper" => "§3 (one multiply-high form suffices)");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimize;

    const NO_MULUH: TargetCaps = TargetCaps {
        has_muluh: false,
        ..TargetCaps::FULL
    };
    const NO_MULSH: TargetCaps = TargetCaps {
        has_mulsh: false,
        ..TargetCaps::FULL
    };
    const NO_SRA: TargetCaps = TargetCaps {
        has_sra: false,
        ..TargetCaps::FULL
    };
    const NO_CARRY: TargetCaps = TargetCaps {
        has_carry: false,
        ..TargetCaps::FULL
    };
    const MINIMAL: TargetCaps = TargetCaps {
        has_muluh: true,
        has_mulsh: false,
        has_sra: false,
        has_carry: false,
    };

    fn single_op_program(op_of: impl Fn(Reg, Reg) -> Op, w: u32) -> Program {
        let mut b = Builder::new(w, 2);
        let r = b.push(op_of(b.arg(0), b.arg(1)));
        b.finish([r])
    }

    fn assert_no_op(prog: &Program, pred: impl Fn(&Op) -> bool) {
        assert!(
            prog.insts().iter().all(|o| !pred(o)),
            "illegal op survived: {prog}"
        );
    }

    #[test]
    fn legalized_programs_validate() {
        let prog = single_op_program(Op::MulUH, 32);
        for caps in [NO_MULUH, NO_MULSH, NO_SRA, MINIMAL, TargetCaps::FULL] {
            if caps.has_muluh || caps.has_mulsh {
                legalize(&prog, caps).validate().unwrap();
            }
        }
    }

    #[test]
    fn muluh_via_mulsh_exhaustive_w8() {
        let prog = single_op_program(Op::MulUH, 8);
        let legal = legalize(&prog, NO_MULUH);
        assert_no_op(&legal, |o| matches!(o, Op::MulUH(..)));
        for x in 0u64..=255 {
            for y in 0u64..=255 {
                assert_eq!(
                    legal.eval(&[x, y]).unwrap(),
                    prog.eval(&[x, y]).unwrap(),
                    "{x} {y}"
                );
            }
        }
    }

    #[test]
    fn mulsh_via_muluh_exhaustive_w8() {
        let prog = single_op_program(Op::MulSH, 8);
        let legal = legalize(&prog, NO_MULSH);
        assert_no_op(&legal, |o| matches!(o, Op::MulSH(..)));
        for x in 0u64..=255 {
            for y in 0u64..=255 {
                assert_eq!(
                    legal.eval(&[x, y]).unwrap(),
                    prog.eval(&[x, y]).unwrap(),
                    "{x} {y}"
                );
            }
        }
    }

    #[test]
    fn sra_via_srl_exhaustive_w8() {
        for n in 0..8u32 {
            let mut b = Builder::new(8, 1);
            let r = b.push(Op::Sra(b.arg(0), n));
            let prog = b.finish([r]);
            let legal = legalize(&prog, NO_SRA);
            assert_no_op(&legal, |o| matches!(o, Op::Sra(..) | Op::Xsign(..)));
            for x in 0u64..=255 {
                assert_eq!(
                    legal.eval(&[x]).unwrap(),
                    prog.eval(&[x]).unwrap(),
                    "x={x} n={n}"
                );
            }
        }
    }

    #[test]
    fn xsign_without_sra_exhaustive_w8() {
        let mut b = Builder::new(8, 1);
        let r = b.push(Op::Xsign(b.arg(0)));
        let prog = b.finish([r]);
        let legal = legalize(&prog, NO_SRA);
        assert_no_op(&legal, |o| matches!(o, Op::Sra(..) | Op::Xsign(..)));
        for x in 0u64..=255 {
            assert_eq!(legal.eval(&[x]).unwrap(), prog.eval(&[x]).unwrap(), "{x}");
        }
    }

    #[test]
    fn minimal_machine_runs_signed_division_shape() {
        // A signed magic division needs MULSH + SRA + XSIGN; legalize to a
        // machine with neither and check numerically at width 8.
        let mut b = Builder::new(8, 1);
        let n = b.arg(0);
        let m = b.constant(0x56); // (2^8+2)/3 = 86: signed /3 multiplier
        let hi = b.push(Op::MulSH(m, n));
        let sign = b.push(Op::Xsign(n));
        let q = b.push(Op::Sub(hi, sign));
        let prog = b.finish([q]);
        let legal = legalize(&prog, MINIMAL);
        assert_no_op(&legal, |o| {
            matches!(o, Op::MulSH(..) | Op::Sra(..) | Op::Xsign(..))
        });
        for x in 0u64..=255 {
            let expect = ((x as u8 as i8).wrapping_div(3)) as u8 as u64;
            assert_eq!(legal.eval1(&[x]).unwrap(), expect, "x={x}");
        }
    }

    #[test]
    fn carry_borrow_via_sltu_exhaustive_w8() {
        for mk in [Op::Carry as fn(Reg, Reg) -> Op, Op::Borrow] {
            let prog = single_op_program(mk, 8);
            let legal = legalize(&prog, NO_CARRY);
            assert_no_op(&legal, |o| matches!(o, Op::Carry(..) | Op::Borrow(..)));
            for x in 0u64..=255 {
                for y in 0u64..=255 {
                    assert_eq!(
                        legal.eval(&[x, y]).unwrap(),
                        prog.eval(&[x, y]).unwrap(),
                        "{x} {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_caps_is_identity_modulo_regnames() {
        let prog = single_op_program(Op::MulUH, 32);
        let legal = legalize(&prog, TargetCaps::FULL);
        assert_eq!(legal.insts(), prog.insts());
    }

    #[test]
    fn legalized_then_optimized_still_correct() {
        let prog = single_op_program(Op::MulSH, 8);
        let opt = optimize(&legalize(&prog, NO_MULSH));
        for x in (0u64..=255).step_by(3) {
            for y in (0u64..=255).step_by(5) {
                assert_eq!(opt.eval(&[x, y]).unwrap(), prog.eval(&[x, y]).unwrap());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot be legalized")]
    fn no_multiply_high_at_all_panics() {
        let prog = single_op_program(Op::MulUH, 8);
        let _ = legalize(
            &prog,
            TargetCaps {
                has_muluh: false,
                has_mulsh: false,
                ..TargetCaps::FULL
            },
        );
    }
}
