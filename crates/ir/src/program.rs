//! The IR: values, operations, programs and the builder.

use core::fmt;

/// A value in a [`Program`] — the index of the instruction that produces
/// it (SSA style: every value is defined exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub(crate) u32);

impl Reg {
    /// The defining instruction's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a register from a raw instruction index.
    ///
    /// Mostly useful for test generators; [`Builder::push`] still
    /// validates that every operand is defined before use, so a bad index
    /// cannot produce an ill-formed program.
    #[inline]
    pub fn from_index(i: usize) -> Reg {
        Reg(u32::try_from(i).expect("instruction index fits in u32"))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One IR operation.
///
/// The set is exactly the paper's Table 3.1 (plus constants, arguments,
/// the relational `SLT` ops used by the §6 improvements, and hardware
/// division for baseline comparisons). Shift counts are compile-time
/// constants, as in all the paper's generated code.
// Deliberately exhaustive (no #[non_exhaustive]): backends and simulators
// must handle every operation, and the compiler should tell them when the
// set grows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A program input (index into the argument list).
    Arg(u32),
    /// An N-bit constant (stored zero-extended in a `u64`).
    Const(u64),
    /// Two's-complement addition.
    Add(Reg, Reg),
    /// Two's-complement subtraction.
    Sub(Reg, Reg),
    /// Two's-complement negation.
    Neg(Reg),
    /// `MULL`: low half of the product (signedness-agnostic).
    MulL(Reg, Reg),
    /// `MULUH`: high half of the unsigned product.
    MulUH(Reg, Reg),
    /// `MULSH`: high half of the signed product.
    MulSH(Reg, Reg),
    /// Bitwise AND.
    And(Reg, Reg),
    /// Bitwise OR.
    Or(Reg, Reg),
    /// Bitwise exclusive OR.
    Eor(Reg, Reg),
    /// Bitwise complement.
    Not(Reg),
    /// `SLL`: logical left shift by a constant.
    Sll(Reg, u32),
    /// `SRL`: logical right shift by a constant.
    Srl(Reg, u32),
    /// `SRA`: arithmetic right shift by a constant.
    Sra(Reg, u32),
    /// `XSIGN`: −1 if negative else 0 (short for `SRA(x, N-1)`).
    Xsign(Reg),
    /// Signed set-less-than: 1 if `a < b` else 0.
    SltS(Reg, Reg),
    /// Unsigned set-less-than: 1 if `a < b` else 0.
    SltU(Reg, Reg),
    /// Carry out of the unsigned sum `a + b`: 1 if `a + b >= 2^N` else 0.
    ///
    /// The 2N-bit arithmetic of Fig 8.1 (§8) is decomposed into word ops;
    /// this is the add-with-carry primitive that propagates between limbs.
    /// Legalizes to `SLTU(ADD(a, b), a)` on targets without carry flags.
    Carry(Reg, Reg),
    /// Borrow out of the unsigned difference `a - b`: 1 if `a < b` else 0.
    ///
    /// The subtract-with-borrow twin of [`Op::Carry`]; legalizes to
    /// `SLTU(a, b)`.
    Borrow(Reg, Reg),
    /// Hardware unsigned division (baseline only; traps on zero).
    DivU(Reg, Reg),
    /// Hardware signed division, rounding toward zero (baseline only).
    DivS(Reg, Reg),
    /// Hardware unsigned remainder (baseline only).
    RemU(Reg, Reg),
    /// Hardware signed remainder (baseline only).
    RemS(Reg, Reg),
}

impl Op {
    /// The operand registers of this operation, in order.
    pub fn operands(&self) -> OperandIter {
        use Op::*;
        let (a, b) = match *self {
            Arg(_) | Const(_) => (None, None),
            Neg(a) | Not(a) | Xsign(a) | Sll(a, _) | Srl(a, _) | Sra(a, _) => (Some(a), None),
            Add(a, b)
            | Sub(a, b)
            | MulL(a, b)
            | MulUH(a, b)
            | MulSH(a, b)
            | And(a, b)
            | Or(a, b)
            | Eor(a, b)
            | SltS(a, b)
            | SltU(a, b)
            | Carry(a, b)
            | Borrow(a, b)
            | DivU(a, b)
            | DivS(a, b)
            | RemU(a, b)
            | RemS(a, b) => (Some(a), Some(b)),
        };
        OperandIter { a, b }
    }

    /// Rewrites operand registers through `f` (used by the optimizer's
    /// remapping passes).
    pub(crate) fn map_operands(self, mut f: impl FnMut(Reg) -> Reg) -> Op {
        use Op::*;
        match self {
            Arg(i) => Arg(i),
            Const(c) => Const(c),
            Add(a, b) => Add(f(a), f(b)),
            Sub(a, b) => Sub(f(a), f(b)),
            Neg(a) => Neg(f(a)),
            MulL(a, b) => MulL(f(a), f(b)),
            MulUH(a, b) => MulUH(f(a), f(b)),
            MulSH(a, b) => MulSH(f(a), f(b)),
            And(a, b) => And(f(a), f(b)),
            Or(a, b) => Or(f(a), f(b)),
            Eor(a, b) => Eor(f(a), f(b)),
            Not(a) => Not(f(a)),
            Sll(a, n) => Sll(f(a), n),
            Srl(a, n) => Srl(f(a), n),
            Sra(a, n) => Sra(f(a), n),
            Xsign(a) => Xsign(f(a)),
            SltS(a, b) => SltS(f(a), f(b)),
            SltU(a, b) => SltU(f(a), f(b)),
            Carry(a, b) => Carry(f(a), f(b)),
            Borrow(a, b) => Borrow(f(a), f(b)),
            DivU(a, b) => DivU(f(a), f(b)),
            DivS(a, b) => DivS(f(a), f(b)),
            RemU(a, b) => RemU(f(a), f(b)),
            RemS(a, b) => RemS(f(a), f(b)),
        }
    }

    fn mnemonic(&self) -> &'static str {
        use Op::*;
        match self {
            Arg(_) => "arg",
            Const(_) => "const",
            Add(..) => "add",
            Sub(..) => "sub",
            Neg(..) => "neg",
            MulL(..) => "mull",
            MulUH(..) => "muluh",
            MulSH(..) => "mulsh",
            And(..) => "and",
            Or(..) => "or",
            Eor(..) => "eor",
            Not(..) => "not",
            Sll(..) => "sll",
            Srl(..) => "srl",
            Sra(..) => "sra",
            Xsign(..) => "xsign",
            SltS(..) => "slts",
            SltU(..) => "sltu",
            Carry(..) => "carry",
            Borrow(..) => "borrow",
            DivU(..) => "divu",
            DivS(..) => "divs",
            RemU(..) => "remu",
            RemS(..) => "rems",
        }
    }
}

/// Iterator over an operation's register operands (at most two).
#[derive(Debug, Clone)]
pub struct OperandIter {
    a: Option<Reg>,
    b: Option<Reg>,
}

impl Iterator for OperandIter {
    type Item = Reg;
    fn next(&mut self) -> Option<Reg> {
        self.a.take().or_else(|| self.b.take())
    }
}

/// A straight-line IR program: a list of SSA instructions over an N-bit
/// word, with one or more result values.
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{Builder, Op};
///
/// // q = SRL(MULUH(m, n), 3): unsigned division by 10 at N = 32.
/// let mut b = Builder::new(32, 1);
/// let n = b.arg(0);
/// let m = b.constant(0xcccc_cccd);
/// let hi = b.push(Op::MulUH(m, n));
/// let q = b.push(Op::Srl(hi, 3));
/// let prog = b.finish([q]);
/// assert_eq!(prog.eval(&[1234]).unwrap(), vec![123]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    width: u32,
    n_args: u32,
    insts: Vec<Op>,
    results: Vec<Reg>,
}

impl Program {
    /// The word width `N` in bits (1..=64).
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of declared arguments.
    #[inline]
    pub fn arg_count(&self) -> u32 {
        self.n_args
    }

    /// The instruction list, in definition order.
    #[inline]
    pub fn insts(&self) -> &[Op] {
        &self.insts
    }

    /// The result registers.
    #[inline]
    pub fn results(&self) -> &[Reg] {
        &self.results
    }

    /// Checks structural well-formedness: every operand refers to an
    /// earlier instruction (SSA dominance in a straight line), argument
    /// instructions are exactly the leading `Arg(0..n_args)` or reference
    /// valid indices, shift counts are in range, constants are masked, and
    /// every result register is defined.
    ///
    /// Returns a description of the first violation, or `Ok(())`. The
    /// optimizer, legalizer and scheduler all preserve validity (asserted
    /// in their tests).
    pub fn validate(&self) -> Result<(), String> {
        let m = crate::mask(self.width);
        for (i, op) in self.insts.iter().enumerate() {
            for r in op.operands() {
                if r.index() >= i {
                    return Err(format!("v{i} uses v{} defined at or after it", r.index()));
                }
            }
            match *op {
                Op::Arg(k) if k >= self.n_args => {
                    return Err(format!("v{i} reads argument #{k} of {}", self.n_args));
                }
                Op::Const(c) if c & !m != 0 => {
                    return Err(format!("v{i} constant {c:#x} exceeds {} bits", self.width));
                }
                Op::Sll(_, n) | Op::Srl(_, n) | Op::Sra(_, n) if n >= self.width => {
                    return Err(format!("v{i} shift count {n} out of range"));
                }
                _ => {}
            }
        }
        for r in &self.results {
            if r.index() >= self.insts.len() {
                return Err(format!("result {r} is not defined"));
            }
        }
        if self.results.is_empty() {
            return Err("program returns no values".into());
        }
        Ok(())
    }

    pub(crate) fn from_raw(width: u32, n_args: u32, insts: Vec<Op>, results: Vec<Reg>) -> Self {
        Program {
            width,
            n_args,
            insts,
            results,
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn({} args) -> {} values, N={}:",
            self.n_args,
            self.results.len(),
            self.width
        )?;
        for (i, op) in self.insts.iter().enumerate() {
            write!(f, "  v{i} = {}", op.mnemonic())?;
            match op {
                Op::Arg(k) => write!(f, " #{k}")?,
                Op::Const(c) => write!(f, " {c:#x}")?,
                Op::Sll(a, n) | Op::Srl(a, n) | Op::Sra(a, n) => write!(f, " {a}, {n}")?,
                _ => {
                    for (j, r) in op.operands().enumerate() {
                        if j > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, " {r}")?;
                    }
                }
            }
            writeln!(f)?;
        }
        write!(f, "  return")?;
        for r in &self.results {
            write!(f, " {r}")?;
        }
        Ok(())
    }
}

/// Incremental [`Program`] constructor.
///
/// Arguments must be declared up front (`Builder::new(width, n_args)`);
/// [`Builder::arg`] returns their registers. Every other instruction is
/// appended with [`Builder::push`] or a convenience method.
#[derive(Debug, Clone)]
pub struct Builder {
    width: u32,
    n_args: u32,
    insts: Vec<Op>,
}

impl Builder {
    /// Starts a program over `width`-bit words taking `n_args` arguments.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= width <= 64`.
    pub fn new(width: u32, n_args: u32) -> Self {
        assert!((1..=64).contains(&width), "width must be 1..=64");
        let insts = (0..n_args).map(Op::Arg).collect();
        Builder {
            width,
            n_args,
            insts,
        }
    }

    /// The word width `N` in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Register holding argument `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is out of range.
    pub fn arg(&self, i: u32) -> Reg {
        assert!(i < self.n_args, "argument index out of range");
        Reg(i)
    }

    /// Appends `op` and returns its result register.
    ///
    /// # Panics
    ///
    /// Panics when an operand register is not yet defined, or a shift
    /// count is `>= width` (the paper's operations require
    /// `0 <= n <= N-1`).
    pub fn push(&mut self, op: Op) -> Reg {
        for r in op.operands() {
            assert!(
                (r.0 as usize) < self.insts.len(),
                "operand {r} not defined yet"
            );
        }
        if let Op::Sll(_, n) | Op::Srl(_, n) | Op::Sra(_, n) = op {
            assert!(
                n < self.width,
                "shift count {n} out of range for N={}",
                self.width
            );
        }
        // Stored constants are always masked to the word width — the
        // interpreter and optimizer rely on this invariant.
        let op = match op {
            Op::Const(c) => Op::Const(c & crate::mask(self.width)),
            other => other,
        };
        let reg = Reg(self.insts.len() as u32);
        self.insts.push(op);
        reg
    }

    /// Appends a constant (masked to the word width).
    pub fn constant(&mut self, value: u64) -> Reg {
        self.push(Op::Const(value))
    }

    /// Finishes the program with the given result registers.
    ///
    /// # Panics
    ///
    /// Panics when a result register is undefined or no results are given.
    pub fn finish(self, results: impl IntoIterator<Item = Reg>) -> Program {
        let results: Vec<Reg> = results.into_iter().collect();
        assert!(
            !results.is_empty(),
            "a program must return at least one value"
        );
        for r in &results {
            assert!((r.0 as usize) < self.insts.len(), "result {r} not defined");
        }
        Program::from_raw(self.width, self.n_args, self.insts, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_regs() {
        let mut b = Builder::new(32, 2);
        assert_eq!(b.arg(0), Reg(0));
        assert_eq!(b.arg(1), Reg(1));
        let c = b.constant(5);
        assert_eq!(c, Reg(2));
        let s = b.push(Op::Add(b.arg(0), c));
        assert_eq!(s, Reg(3));
        let p = b.finish([s]);
        assert_eq!(p.insts().len(), 4);
        assert_eq!(p.arg_count(), 2);
    }

    #[test]
    fn constants_are_masked() {
        let mut b = Builder::new(8, 0);
        let c = b.constant(0x1ff);
        let p = b.finish([c]);
        assert_eq!(p.insts()[c.index()], Op::Const(0xff));
    }

    #[test]
    #[should_panic(expected = "not defined yet")]
    fn forward_reference_panics() {
        let mut b = Builder::new(32, 0);
        b.push(Op::Neg(Reg(5)));
    }

    #[test]
    #[should_panic(expected = "shift count")]
    fn oversized_shift_panics() {
        let mut b = Builder::new(16, 1);
        let a = b.arg(0);
        b.push(Op::Srl(a, 16));
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn oversized_width_panics() {
        let _ = Builder::new(65, 0);
    }

    #[test]
    fn display_is_readable() {
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let m = b.constant(0xcccc_cccd);
        let h = b.push(Op::MulUH(m, n));
        let q = b.push(Op::Srl(h, 3));
        let p = b.finish([q]);
        let text = p.to_string();
        assert!(text.contains("muluh"), "{text}");
        assert!(text.contains("srl"), "{text}");
        assert!(text.contains("0xcccccccd"), "{text}");
        assert!(text.contains("return v3"), "{text}");
    }

    #[test]
    fn operand_iter_orders() {
        let op = Op::Sub(Reg(3), Reg(7));
        let ops: Vec<Reg> = op.operands().collect();
        assert_eq!(ops, vec![Reg(3), Reg(7)]);
        assert_eq!(Op::Const(1).operands().count(), 0);
        assert_eq!(Op::Neg(Reg(0)).operands().count(), 1);
    }
}
