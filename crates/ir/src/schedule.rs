//! List scheduling: reordering independent instructions to hide long
//! latencies.
//!
//! §10 notes that making the transformation *profitable* needs care at
//! the machine level — on pipelined machines (the paper's `p` footnote)
//! independent work can execute under a multiply's latency, but only if
//! the code generator doesn't serialize everything behind it. This pass
//! performs classic latency-weighted list scheduling on the straight-line
//! programs the generators emit; `magicdiv-simcpu` shows the cycle
//! difference.

use crate::cost::OpClass;
use crate::program::{Op, Program, Reg};

/// Per-class latencies used to prioritize the ready list. These only
/// steer the *order*; correctness never depends on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleWeights {
    /// Latency assumed for `MULL`/`MULUH`/`MULSH`.
    pub multiply: u32,
    /// Latency assumed for divides.
    pub divide: u32,
    /// Latency assumed for everything else.
    pub simple: u32,
}

impl Default for ScheduleWeights {
    fn default() -> Self {
        // A generic early-90s RISC: long multiplies, longer divides.
        ScheduleWeights {
            multiply: 10,
            divide: 35,
            simple: 1,
        }
    }
}

fn op_latency(op: &Op, w: &ScheduleWeights) -> u32 {
    match op.class() {
        OpClass::Nop => 0,
        OpClass::MulLow | OpClass::MulHigh => w.multiply,
        OpClass::Div => w.divide,
        _ => w.simple,
    }
}

/// Reorders `prog` so high-latency instructions issue as early as their
/// operands allow, letting independent work overlap them. Semantics are
/// preserved exactly (SSA data dependencies are the only constraint in a
/// straight-line program).
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{schedule, Builder, Op, ScheduleWeights};
///
/// // A multiply whose result is needed last, written after cheap ops.
/// let mut b = Builder::new(32, 2);
/// let cheap = b.push(Op::Add(b.arg(0), b.arg(1)));
/// let cheap2 = b.push(Op::Add(cheap, b.arg(0)));
/// let mul = b.push(Op::MulUH(b.arg(0), b.arg(1)));
/// let out = b.push(Op::Add(mul, cheap2));
/// let p = b.finish([out]);
/// let s = schedule(&p, ScheduleWeights::default());
/// assert_eq!(s.eval(&[7, 9]).unwrap(), p.eval(&[7, 9]).unwrap());
/// // The multiply now issues before the dependent add chain.
/// let mul_pos = s.insts().iter().position(|o| matches!(o, Op::MulUH(..))).unwrap();
/// let add_pos = s.insts().iter().position(|o| matches!(o, Op::Add(..))).unwrap();
/// assert!(mul_pos < add_pos);
/// ```
pub fn schedule(prog: &Program, weights: ScheduleWeights) -> Program {
    let n = prog.insts().len();
    // Critical-path priority: latency of the op plus the longest path to
    // any result (computed backwards).
    let mut priority = vec![0u32; n];
    for (i, op) in prog.insts().iter().enumerate().rev() {
        let own = op_latency(op, &weights);
        // users were processed already (they come later in SSA order).
        let best_user = priority[i]; // accumulated from users below
        priority[i] = best_user.saturating_add(own);
        for r in op.operands() {
            let j = r.index();
            if priority[j] < priority[i] {
                priority[j] = priority[i];
            }
        }
    }

    // Kahn-style list scheduling: ready set ordered by priority.
    let mut remaining_deps: Vec<usize> = prog
        .insts()
        .iter()
        .map(|op| {
            let mut uniq: Vec<usize> = op.operands().map(|r| r.index()).collect();
            uniq.sort_unstable();
            uniq.dedup();
            uniq.len()
        })
        .collect();
    let mut users: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, op) in prog.insts().iter().enumerate() {
        let mut uniq: Vec<usize> = op.operands().map(|r| r.index()).collect();
        uniq.sort_unstable();
        uniq.dedup();
        for j in uniq {
            users[j].push(i);
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_deps[i] == 0).collect();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        .max_by_key(|(_, &i)| (priority[i], std::cmp::Reverse(i)))
        .map(|(p, _)| p)
    {
        let i = ready.swap_remove(pos);
        order.push(i);
        for &u in &users[i] {
            remaining_deps[u] -= 1;
            if remaining_deps[u] == 0 {
                ready.push(u);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "straight-line SSA cannot deadlock");

    // Rebuild in the new order.
    let mut remap: Vec<Reg> = vec![Reg::from_index(0); n];
    let mut b = crate::program::Builder::new(prog.width(), prog.arg_count());
    for &i in &order {
        let op = prog.insts()[i].map_operands(|r| remap[r.index()]);
        remap[i] = match op {
            Op::Arg(k) => b.arg(k),
            other => b.push(other),
        };
    }
    let moved = order
        .iter()
        .enumerate()
        .filter(|(new, &old)| *new != old)
        .count();
    magicdiv_trace::event!("ir.schedule",
        "ops" => n, "moved" => moved,
        "paper" => "§10 (issue long-latency multiplies early)");
    b.finish(prog.results().iter().map(|r| remap[r.index()]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Builder;

    #[test]
    fn scheduled_programs_validate() {
        let mut b = Builder::new(32, 2);
        let mul = b.push(Op::MulUH(b.arg(0), b.arg(1)));
        let add = b.push(Op::Add(b.arg(0), mul));
        let p = b.finish([add]);
        schedule(&p, ScheduleWeights::default()).validate().unwrap();
    }

    #[test]
    fn preserves_semantics_on_divrem_kernel() {
        // The d = 10 divrem shape with extra independent work.
        let mut b = Builder::new(32, 1);
        let x = b.arg(0);
        let m = b.constant(0xcccc_cccd);
        let hi = b.push(Op::MulUH(m, x));
        let q = b.push(Op::Srl(hi, 3));
        let ten = b.constant(10);
        let back = b.push(Op::MulL(q, ten));
        let r = b.push(Op::Sub(x, back));
        let fourty8 = b.constant(48);
        let digit = b.push(Op::Add(r, fourty8));
        let p = b.finish([q, digit]);
        let s = schedule(&p, ScheduleWeights::default());
        for x in [0u64, 9, 10, 1994, u32::MAX as u64] {
            assert_eq!(s.eval(&[x]).unwrap(), p.eval(&[x]).unwrap(), "{x}");
        }
    }

    #[test]
    fn multiplies_rise_to_the_top() {
        let mut b = Builder::new(32, 2);
        let a = b.push(Op::Add(b.arg(0), b.arg(1)));
        let a2 = b.push(Op::Add(a, a));
        let a3 = b.push(Op::Add(a2, a2));
        let mul = b.push(Op::MulUH(b.arg(0), b.arg(1)));
        let out = b.push(Op::Add(a3, mul));
        let p = b.finish([out]);
        let s = schedule(&p, ScheduleWeights::default());
        let pos = |pred: &dyn Fn(&Op) -> bool| s.insts().iter().position(pred).unwrap();
        assert!(
            pos(&|o| matches!(o, Op::MulUH(..))) < pos(&|o| matches!(o, Op::Add(..))),
            "{s}"
        );
    }

    #[test]
    fn schedule_helps_on_pipelined_machines() {
        // Measured via the op order only: after scheduling, the multiply
        // is not immediately followed by its consumer.
        let mut b = Builder::new(32, 2);
        let mul = b.push(Op::MulUH(b.arg(0), b.arg(1)));
        let c1 = b.push(Op::Add(b.arg(0), b.arg(1)));
        let c2 = b.push(Op::Eor(c1, b.arg(0)));
        let out = b.push(Op::Add(mul, c2));
        let p = b.finish([out]);
        let s = schedule(&p, ScheduleWeights::default());
        let insts = s.insts();
        let mul_at = insts
            .iter()
            .position(|o| matches!(o, Op::MulUH(..)))
            .unwrap();
        // The instruction right after the multiply is independent of it.
        let next = &insts[mul_at + 1];
        assert!(
            next.operands().all(|r| r.index() != mul_at),
            "consumer scheduled immediately after multiply: {s}"
        );
    }

    #[test]
    fn arguments_and_results_survive() {
        let mut b = Builder::new(16, 3);
        let s1 = b.push(Op::Add(b.arg(0), b.arg(1)));
        let s2 = b.push(Op::Sub(b.arg(2), s1));
        let p = b.finish([s1, s2]);
        let s = schedule(&p, ScheduleWeights::default());
        assert_eq!(s.arg_count(), 3);
        assert_eq!(s.results().len(), 2);
        assert_eq!(s.eval(&[5, 6, 100]).unwrap(), p.eval(&[5, 6, 100]).unwrap());
    }

    #[test]
    fn single_instruction_programs_are_stable() {
        let mut b = Builder::new(32, 1);
        let neg = b.push(Op::Neg(b.arg(0)));
        let p = b.finish([neg]);
        let s = schedule(&p, ScheduleWeights::default());
        assert_eq!(s.insts(), p.insts());
    }
}
