//! Systematic single-operation mutation of IR programs.
//!
//! The differential oracle chain (interpreter ↔ native division ↔ emitted
//! assembly) is only trustworthy if it would actually *catch* a wrong
//! program. This module manufactures the wrong programs: every mutant
//! differs from the original by exactly one defect of a kind the paper's
//! algorithms are sensitive to —
//!
//! * [`Mutation::ConstFlip`] — one flipped bit in a `Const`, including
//!   the magic multiplier (the classic "off-by-one reciprocal" bug that
//!   only fails on rare dividends);
//! * [`Mutation::ShiftNudge`] — a shift amount off by ±1 (wrong
//!   `sh_post` selection);
//! * [`Mutation::OpcodeSwap`] — an opcode replaced by another of its
//!   cost class (`MULUH` ↔ `MULSH`, `SRL` ↔ `SRA`, `ADD` ↔ `SUB`, …);
//! * [`Mutation::OperandSwap`] — swapped operands of a non-commutative
//!   operation.
//!
//! Every mutant is structurally valid by construction (`validate()`
//! holds), so a mutant that goes *uncaught* means the oracle has a blind
//! spot, not that the mutant was malformed. The mutation runner in the
//! `verify` bin measures the kill rate over these mutants.

use core::fmt;
use core::str::FromStr;

use crate::program::{Op, Program};

/// One single-operation defect to inject into a [`Program`].
///
/// The `Display`/`FromStr` pair round-trips, so a mutation can be
/// persisted in a one-line corpus reproducer and replayed later.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutation {
    /// Flip bit `bit` of the constant at instruction `inst`.
    ConstFlip {
        /// Instruction index of the `Const`.
        inst: usize,
        /// Bit to flip (`0 <= bit < width`).
        bit: u32,
    },
    /// Add `delta` (±1) to the shift count at instruction `inst`.
    ShiftNudge {
        /// Instruction index of the shift.
        inst: usize,
        /// Shift-count delta; the result stays in `0..width`.
        delta: i32,
    },
    /// Replace the opcode at `inst` with the named opcode of the same
    /// cost class, keeping the operands.
    OpcodeSwap {
        /// Instruction index.
        inst: usize,
        /// Target mnemonic (e.g. `"mulsh"`, `"sra"`, `"sub"`).
        to: &'static str,
    },
    /// Swap the two operands of the non-commutative operation at `inst`.
    OperandSwap {
        /// Instruction index.
        inst: usize,
    },
}

impl Mutation {
    /// The mutation class name (the part of [`Display`](fmt::Display)
    /// before the `@`), used for per-class kill tallies in reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Mutation::ConstFlip { .. } => "const-flip",
            Mutation::ShiftNudge { .. } => "shift-nudge",
            Mutation::OpcodeSwap { .. } => "opcode-swap",
            Mutation::OperandSwap { .. } => "operand-swap",
        }
    }
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::ConstFlip { inst, bit } => write!(f, "const-flip@{inst}:bit{bit}"),
            Mutation::ShiftNudge { inst, delta } => {
                write!(f, "shift-nudge@{inst}:{delta:+}")
            }
            Mutation::OpcodeSwap { inst, to } => write!(f, "opcode-swap@{inst}:{to}"),
            Mutation::OperandSwap { inst } => write!(f, "operand-swap@{inst}"),
        }
    }
}

/// A mnemonic accepted by [`Mutation::OpcodeSwap`], canonicalized to the
/// `'static` spelling [`Mutation`] stores.
fn canonical_mnemonic(s: &str) -> Option<&'static str> {
    const KNOWN: &[&str] = &[
        "add", "sub", "mull", "muluh", "mulsh", "and", "or", "eor", "sll", "srl", "sra", "slts",
        "sltu", "carry", "borrow", "divu", "divs", "remu", "rems",
    ];
    KNOWN.iter().find(|k| **k == s).copied()
}

impl FromStr for Mutation {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, rest) = s
            .split_once('@')
            .ok_or_else(|| format!("mutation `{s}` has no `@`"))?;
        let bad = || format!("malformed mutation `{s}`");
        match kind {
            "operand-swap" => {
                let inst = rest.parse().map_err(|_| bad())?;
                Ok(Mutation::OperandSwap { inst })
            }
            "const-flip" => {
                let (inst, bit) = rest.split_once(":bit").ok_or_else(bad)?;
                Ok(Mutation::ConstFlip {
                    inst: inst.parse().map_err(|_| bad())?,
                    bit: bit.parse().map_err(|_| bad())?,
                })
            }
            "shift-nudge" => {
                let (inst, delta) = rest.split_once(':').ok_or_else(bad)?;
                Ok(Mutation::ShiftNudge {
                    inst: inst.parse().map_err(|_| bad())?,
                    delta: delta.parse().map_err(|_| bad())?,
                })
            }
            "opcode-swap" => {
                let (inst, to) = rest.split_once(':').ok_or_else(bad)?;
                Ok(Mutation::OpcodeSwap {
                    inst: inst.parse().map_err(|_| bad())?,
                    to: canonical_mnemonic(to).ok_or_else(bad)?,
                })
            }
            _ => Err(bad()),
        }
    }
}

/// In-class opcode alternatives for the swap mutation: each pairing stays
/// inside one [`OpClass`](crate::OpClass) so the mutant has the same
/// shape and cost as the original — only its meaning changes.
fn opcode_alternatives(op: &Op) -> &'static [&'static str] {
    match op {
        Op::Add(..) => &["sub"],
        Op::Sub(..) => &["add"],
        Op::MulUH(..) => &["mulsh"],
        Op::MulSH(..) => &["muluh"],
        Op::And(..) => &["or", "eor"],
        Op::Or(..) => &["and", "eor"],
        Op::Eor(..) => &["and", "or"],
        Op::Sll(..) => &["srl", "sra"],
        Op::Srl(..) => &["sll", "sra"],
        Op::Sra(..) => &["sll", "srl"],
        Op::SltS(..) => &["sltu"],
        Op::SltU(..) => &["slts"],
        Op::Carry(..) => &["borrow"],
        Op::Borrow(..) => &["carry"],
        Op::DivU(..) => &["divs"],
        Op::DivS(..) => &["divu"],
        Op::RemU(..) => &["rems"],
        Op::RemS(..) => &["remu"],
        _ => &[],
    }
}

fn swap_opcode(op: &Op, to: &str) -> Option<Op> {
    let swapped = match (*op, to) {
        (Op::Add(a, b), "sub") => Op::Sub(a, b),
        (Op::Sub(a, b), "add") => Op::Add(a, b),
        (Op::MulUH(a, b), "mulsh") => Op::MulSH(a, b),
        (Op::MulSH(a, b), "muluh") => Op::MulUH(a, b),
        (Op::And(a, b), "or") => Op::Or(a, b),
        (Op::And(a, b), "eor") => Op::Eor(a, b),
        (Op::Or(a, b), "and") => Op::And(a, b),
        (Op::Or(a, b), "eor") => Op::Eor(a, b),
        (Op::Eor(a, b), "and") => Op::And(a, b),
        (Op::Eor(a, b), "or") => Op::Or(a, b),
        (Op::Sll(a, n), "srl") => Op::Srl(a, n),
        (Op::Sll(a, n), "sra") => Op::Sra(a, n),
        (Op::Srl(a, n), "sll") => Op::Sll(a, n),
        (Op::Srl(a, n), "sra") => Op::Sra(a, n),
        (Op::Sra(a, n), "sll") => Op::Sll(a, n),
        (Op::Sra(a, n), "srl") => Op::Srl(a, n),
        (Op::SltS(a, b), "sltu") => Op::SltU(a, b),
        (Op::SltU(a, b), "slts") => Op::SltS(a, b),
        (Op::Carry(a, b), "borrow") => Op::Borrow(a, b),
        (Op::Borrow(a, b), "carry") => Op::Carry(a, b),
        (Op::DivU(a, b), "divs") => Op::DivS(a, b),
        (Op::DivS(a, b), "divu") => Op::DivU(a, b),
        (Op::RemU(a, b), "rems") => Op::RemS(a, b),
        (Op::RemS(a, b), "remu") => Op::RemU(a, b),
        _ => return None,
    };
    Some(swapped)
}

fn swap_operands(op: &Op) -> Option<Op> {
    // Only non-commutative binary operations; swapping Add/And/… operands
    // yields a guaranteed-equivalent mutant, which tells the oracle
    // nothing.
    match *op {
        Op::Sub(a, b) if a != b => Some(Op::Sub(b, a)),
        Op::Borrow(a, b) if a != b => Some(Op::Borrow(b, a)),
        Op::SltS(a, b) if a != b => Some(Op::SltS(b, a)),
        Op::SltU(a, b) if a != b => Some(Op::SltU(b, a)),
        Op::DivU(a, b) if a != b => Some(Op::DivU(b, a)),
        Op::DivS(a, b) if a != b => Some(Op::DivS(b, a)),
        Op::RemU(a, b) if a != b => Some(Op::RemU(b, a)),
        Op::RemS(a, b) if a != b => Some(Op::RemS(b, a)),
        _ => None,
    }
}

/// Enumerates every single-operation mutation applicable to `prog`.
///
/// The list is deterministic (instruction order, then kind order), and
/// every entry satisfies `apply(prog, m).is_some()` with a structurally
/// valid result.
///
/// # Examples
///
/// ```
/// use magicdiv_ir::{mutations, apply_mutation, Builder, Op};
///
/// let mut b = Builder::new(8, 1);
/// let m = b.constant(0xcd);
/// let h = b.push(Op::MulUH(m, b.arg(0)));
/// let q = b.push(Op::Srl(h, 3));
/// let prog = b.finish([q]);
/// let muts = mutations(&prog);
/// // 8 const bits + 1 opcode swap (muluh→mulsh) + 2 shift nudges
/// // + 2 shift opcode swaps (srl→sll/sra).
/// assert_eq!(muts.len(), 8 + 1 + 2 + 2);
/// for m in &muts {
///     let mutant = apply_mutation(&prog, *m).unwrap();
///     assert!(mutant.validate().is_ok(), "{m}");
/// }
/// ```
pub fn mutations(prog: &Program) -> Vec<Mutation> {
    let width = prog.width();
    let mut out = Vec::new();
    for (i, op) in prog.insts().iter().enumerate() {
        match *op {
            Op::Const(_) => {
                for bit in 0..width {
                    out.push(Mutation::ConstFlip { inst: i, bit });
                }
            }
            Op::Sll(_, n) | Op::Srl(_, n) | Op::Sra(_, n) => {
                if n > 0 {
                    out.push(Mutation::ShiftNudge { inst: i, delta: -1 });
                }
                if n + 1 < width {
                    out.push(Mutation::ShiftNudge { inst: i, delta: 1 });
                }
            }
            _ => {}
        }
        for to in opcode_alternatives(op) {
            out.push(Mutation::OpcodeSwap { inst: i, to });
        }
        if swap_operands(op).is_some() {
            out.push(Mutation::OperandSwap { inst: i });
        }
    }
    out
}

/// Applies one mutation, returning the mutated program, or `None` when
/// the mutation does not fit `prog` (wrong instruction kind, out-of-range
/// index or bit, shift leaving `0..width`).
///
/// Mutants produced from [`mutations`] are always `Some` and always pass
/// [`Program::validate`].
pub fn apply_mutation(prog: &Program, m: Mutation) -> Option<Program> {
    let width = prog.width();
    let inst_index = match m {
        Mutation::ConstFlip { inst, .. }
        | Mutation::ShiftNudge { inst, .. }
        | Mutation::OpcodeSwap { inst, .. }
        | Mutation::OperandSwap { inst } => inst,
    };
    let old = prog.insts().get(inst_index)?;
    let new_op = match m {
        Mutation::ConstFlip { bit, .. } => match *old {
            Op::Const(c) if bit < width => Op::Const(c ^ (1u64 << bit)),
            _ => return None,
        },
        Mutation::ShiftNudge { delta, .. } => {
            let nudged = |n: u32| -> Option<u32> {
                let v = n as i64 + delta as i64;
                (0..width as i64).contains(&v).then_some(v as u32)
            };
            match *old {
                Op::Sll(a, n) => Op::Sll(a, nudged(n)?),
                Op::Srl(a, n) => Op::Srl(a, nudged(n)?),
                Op::Sra(a, n) => Op::Sra(a, nudged(n)?),
                _ => return None,
            }
        }
        Mutation::OpcodeSwap { to, .. } => swap_opcode(old, to)?,
        Mutation::OperandSwap { .. } => swap_operands(old)?,
    };
    let mut insts = prog.insts().to_vec();
    insts[inst_index] = new_op;
    Some(Program::from_raw(
        width,
        prog.arg_count(),
        insts,
        prog.results().to_vec(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Builder, Reg};

    fn fig42_d10() -> Program {
        // q = SRL(MULUH(m, n), 3), the d = 10 kernel at width 32.
        let mut b = Builder::new(32, 1);
        let n = b.arg(0);
        let m = b.constant(0xcccc_cccd);
        let h = b.push(Op::MulUH(m, n));
        b.push(Op::Srl(h, 3));
        let q = Reg::from_index(3);
        b.finish([q])
    }

    #[test]
    fn enumeration_is_deterministic_and_valid() {
        let p = fig42_d10();
        let a = mutations(&p);
        let b = mutations(&p);
        assert_eq!(a, b);
        // 32 const bits + muluh→mulsh + srl nudges ±1 + srl→sll/sra.
        assert_eq!(a.len(), 32 + 1 + 2 + 2);
        for m in &a {
            let mutant = apply_mutation(&p, *m).expect("enumerated mutation applies");
            assert!(mutant.validate().is_ok(), "{m}");
            assert_ne!(mutant, p, "{m} must change the program");
        }
    }

    #[test]
    fn const_flip_touches_the_magic() {
        let p = fig42_d10();
        let m = Mutation::ConstFlip { inst: 1, bit: 0 };
        let mutant = apply_mutation(&p, m).unwrap();
        assert_eq!(mutant.insts()[1], Op::Const(0xcccc_cccc));
        // The off-by-one reciprocal undershoots: it is wrong exactly for
        // large dividends with a small residue...
        let n = 4_000_000_000u64;
        assert_ne!(mutant.eval1(&[n]).unwrap(), n / 10);
        // ...but agrees on small ones — exactly why shrinking matters.
        assert_eq!(mutant.eval1(&[1234]).unwrap(), 123);
    }

    #[test]
    fn operand_swap_only_when_non_commutative_and_distinct() {
        let mut b = Builder::new(8, 2);
        let s = b.push(Op::Sub(b.arg(0), b.arg(1))); // swappable
        let same = b.push(Op::Sub(s, s)); // operands equal: skip
        let add = b.push(Op::Add(b.arg(0), same)); // commutative: skip
        let p = b.finish([add]);
        let swaps: Vec<Mutation> = mutations(&p)
            .into_iter()
            .filter(|m| matches!(m, Mutation::OperandSwap { .. }))
            .collect();
        assert_eq!(swaps, vec![Mutation::OperandSwap { inst: 2 }]);
        let mutant = apply_mutation(&p, swaps[0]).unwrap();
        assert_eq!(
            mutant.insts()[2],
            Op::Sub(Reg::from_index(1), Reg::from_index(0))
        );
    }

    #[test]
    fn display_parse_round_trips() {
        let p = fig42_d10();
        for m in mutations(&p) {
            let text = m.to_string();
            let back: Mutation = text.parse().unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(back, m, "{text}");
        }
        for m in [
            Mutation::OperandSwap { inst: 4 },
            Mutation::ShiftNudge { inst: 2, delta: -1 },
            Mutation::OpcodeSwap {
                inst: 9,
                to: "mulsh",
            },
        ] {
            assert_eq!(m.to_string().parse::<Mutation>().unwrap(), m);
        }
        assert!("frob@1".parse::<Mutation>().is_err());
        assert!("const-flip@x:bit2".parse::<Mutation>().is_err());
        assert!("opcode-swap@1:frob".parse::<Mutation>().is_err());
    }

    #[test]
    fn inapplicable_mutations_return_none() {
        let p = fig42_d10();
        assert!(apply_mutation(&p, Mutation::ConstFlip { inst: 0, bit: 1 }).is_none());
        assert!(apply_mutation(&p, Mutation::ConstFlip { inst: 1, bit: 32 }).is_none());
        assert!(apply_mutation(&p, Mutation::OperandSwap { inst: 2 }).is_none()); // muluh commutes
        assert!(apply_mutation(&p, Mutation::ShiftNudge { inst: 1, delta: 1 }).is_none());
        assert!(apply_mutation(&p, Mutation::ConstFlip { inst: 99, bit: 0 }).is_none());
    }

    #[test]
    fn shift_nudges_respect_range() {
        let mut b = Builder::new(8, 1);
        let s0 = b.push(Op::Srl(b.arg(0), 0));
        let s7 = b.push(Op::Sra(s0, 7));
        let p = b.finish([s7]);
        let nudges: Vec<Mutation> = mutations(&p)
            .into_iter()
            .filter(|m| matches!(m, Mutation::ShiftNudge { .. }))
            .collect();
        assert_eq!(
            nudges,
            vec![
                Mutation::ShiftNudge { inst: 1, delta: 1 },
                Mutation::ShiftNudge { inst: 2, delta: -1 },
            ]
        );
    }
}
