//! Bit-accurate interpreter for IR programs at any width up to 64.
//!
//! Values are carried zero-extended in `u64`; every operation masks its
//! result back to `N` bits, and signed operations sign-extend internally.
//! This is the oracle the code generator is verified against.

use core::fmt;

use magicdiv::{Fault, FaultKind, FaultLayer};

use crate::program::{Op, Program};

/// Interpreter failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EvalError {
    /// Wrong number of arguments supplied.
    ArgCount {
        /// Arguments the program declares.
        expected: u32,
        /// Arguments supplied to `eval`.
        got: usize,
    },
    /// A `DivU`/`DivS`/`RemU`/`RemS` instruction saw a zero divisor.
    DivideByZero {
        /// Index of the faulting instruction.
        at: usize,
    },
    /// A `DivS`/`RemS` instruction saw `iN::MIN / -1` while
    /// [`EvalOptions::trap_signed_overflow`] was set. The default mode
    /// wraps, like the paper's code sequences and real hardware.
    SignedOverflow {
        /// Index of the faulting instruction.
        at: usize,
    },
    /// More instructions executed than [`EvalOptions::fuel`] allows.
    FuelExhausted {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::ArgCount { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            EvalError::DivideByZero { at } => write!(f, "division by zero at v{at}"),
            EvalError::SignedOverflow { at } => {
                write!(f, "signed division overflow (MIN / -1) at v{at}")
            }
            EvalError::FuelExhausted { limit } => {
                write!(f, "evaluation fuel of {limit} instructions exhausted")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<EvalError> for Fault {
    fn from(e: EvalError) -> Fault {
        let (kind, at) = match e {
            EvalError::ArgCount { expected, got } => (FaultKind::ArgCount { expected, got }, None),
            EvalError::DivideByZero { at } => (FaultKind::DivideByZero, Some(at)),
            EvalError::SignedOverflow { at } => (FaultKind::SignedOverflow, Some(at)),
            EvalError::FuelExhausted { limit } => (FaultKind::StepLimit { limit }, None),
        };
        Fault {
            layer: FaultLayer::IrInterp,
            kind,
            at,
        }
    }
}

/// Evaluation policy knobs for [`Program::eval_with`].
///
/// The defaults reproduce [`Program::eval`]: unlimited fuel and wrapping
/// `MIN / -1` (the behaviour of the paper's generated sequences). The
/// differential harness runs oracles under an explicit fuel budget so a
/// mutated or malformed program can never hang a verification run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct EvalOptions {
    /// Maximum number of instructions to execute; `None` is unlimited.
    pub fuel: Option<u64>,
    /// Report [`EvalError::SignedOverflow`] on `iN::MIN / -1` instead of
    /// wrapping (hardware-trap semantics, e.g. x86 `idiv`).
    pub trap_signed_overflow: bool,
}

/// The all-ones mask for an `N`-bit word.
#[inline]
pub fn mask(width: u32) -> u64 {
    debug_assert!((1..=64).contains(&width));
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Sign-extends the low `width` bits of `x` into an `i64`.
#[inline]
pub fn sign_extend(x: u64, width: u32) -> i64 {
    debug_assert!((1..=64).contains(&width));
    let shift = 64 - width;
    ((x << shift) as i64) >> shift
}

fn wide_mul(a: u64, b: u64) -> u128 {
    (a as u128) * (b as u128)
}

impl Program {
    /// Evaluates the program on `args`, returning the result values.
    ///
    /// # Errors
    ///
    /// [`EvalError::ArgCount`] on an argument-count mismatch;
    /// [`EvalError::DivideByZero`] when a hardware-division op divides by
    /// zero (magic-division programs contain no such ops and cannot fail
    /// this way).
    ///
    /// # Examples
    ///
    /// ```
    /// use magicdiv_ir::{Builder, Op};
    ///
    /// let mut b = Builder::new(8, 2);
    /// let s = b.push(Op::Add(b.arg(0), b.arg(1)));
    /// let p = b.finish([s]);
    /// assert_eq!(p.eval(&[200, 100]).unwrap(), vec![44]); // wraps mod 2^8
    /// ```
    pub fn eval(&self, args: &[u64]) -> Result<Vec<u64>, EvalError> {
        self.eval_with(args, &EvalOptions::default())
    }

    /// Evaluates the program under an explicit [`EvalOptions`] policy:
    /// an optional fuel budget and optional trapping `MIN / -1`.
    ///
    /// # Errors
    ///
    /// As [`Program::eval`], plus [`EvalError::FuelExhausted`] when the
    /// instruction budget runs out and [`EvalError::SignedOverflow`] when
    /// trapping is requested and a signed divide sees `iN::MIN / -1`.
    ///
    /// # Examples
    ///
    /// ```
    /// use magicdiv_ir::{Builder, EvalError, EvalOptions, Op};
    ///
    /// let mut b = Builder::new(8, 2);
    /// let q = b.push(Op::DivS(b.arg(0), b.arg(1)));
    /// let p = b.finish([q]);
    /// // Default mode wraps: -128 / -1 == -128 at width 8.
    /// assert_eq!(p.eval(&[0x80, 0xff]).unwrap(), vec![0x80]);
    /// let trap = EvalOptions { trap_signed_overflow: true, ..Default::default() };
    /// assert_eq!(
    ///     p.eval_with(&[0x80, 0xff], &trap),
    ///     Err(EvalError::SignedOverflow { at: 2 })
    /// );
    /// ```
    pub fn eval_with(&self, args: &[u64], opts: &EvalOptions) -> Result<Vec<u64>, EvalError> {
        if args.len() != self.arg_count() as usize {
            return Err(EvalError::ArgCount {
                expected: self.arg_count(),
                got: args.len(),
            });
        }
        let w = self.width();
        let m = mask(w);
        let min_signed = 1u64 << (w - 1).min(63); // bit pattern of iN::MIN
        let tracing = magicdiv_trace::enabled();
        let mut class_counts = [0u64; 8];
        let mut vals: Vec<u64> = Vec::with_capacity(self.insts().len());
        for (i, op) in self.insts().iter().enumerate() {
            if let Some(fuel) = opts.fuel {
                if i as u64 >= fuel {
                    return Err(EvalError::FuelExhausted { limit: fuel });
                }
            }
            if tracing {
                class_counts[op.class().index()] += 1;
            }
            let v = |r: crate::Reg| vals[r.index()];
            let result = match *op {
                Op::Arg(k) => args[k as usize] & m,
                Op::Const(c) => c & m,
                Op::Add(a, b) => v(a).wrapping_add(v(b)),
                Op::Sub(a, b) => v(a).wrapping_sub(v(b)),
                Op::Neg(a) => v(a).wrapping_neg(),
                Op::MulL(a, b) => v(a).wrapping_mul(v(b)),
                Op::MulUH(a, b) => (wide_mul(v(a), v(b)) >> w) as u64,
                Op::MulSH(a, b) => {
                    let prod = (sign_extend(v(a), w) as i128) * (sign_extend(v(b), w) as i128);
                    (prod >> w) as u64
                }
                Op::And(a, b) => v(a) & v(b),
                Op::Or(a, b) => v(a) | v(b),
                Op::Eor(a, b) => v(a) ^ v(b),
                Op::Not(a) => !v(a),
                Op::Sll(a, n) => v(a) << n,
                Op::Srl(a, n) => v(a) >> n,
                Op::Sra(a, n) => (sign_extend(v(a), w) >> n) as u64,
                Op::Xsign(a) => (sign_extend(v(a), w) >> (w - 1).min(63)) as u64,
                Op::SltS(a, b) => u64::from(sign_extend(v(a), w) < sign_extend(v(b), w)),
                Op::SltU(a, b) => u64::from(v(a) < v(b)),
                // Values are stored masked, so the unsigned sum/difference
                // wraps iff it leaves the N-bit range.
                Op::Carry(a, b) => u64::from(u128::from(v(a)) + u128::from(v(b)) > u128::from(m)),
                Op::Borrow(a, b) => u64::from(v(a) < v(b)),
                Op::DivU(a, b) => v(a)
                    .checked_div(v(b))
                    .ok_or(EvalError::DivideByZero { at: i })?,
                Op::DivS(a, b) => {
                    let (x, y) = (sign_extend(v(a), w), sign_extend(v(b), w));
                    if y == 0 {
                        return Err(EvalError::DivideByZero { at: i });
                    }
                    if opts.trap_signed_overflow && v(a) == min_signed && y == -1 {
                        return Err(EvalError::SignedOverflow { at: i });
                    }
                    x.wrapping_div(y) as u64
                }
                Op::RemU(a, b) => v(a)
                    .checked_rem(v(b))
                    .ok_or(EvalError::DivideByZero { at: i })?,
                Op::RemS(a, b) => {
                    let (x, y) = (sign_extend(v(a), w), sign_extend(v(b), w));
                    if y == 0 {
                        return Err(EvalError::DivideByZero { at: i });
                    }
                    if opts.trap_signed_overflow && v(a) == min_signed && y == -1 {
                        return Err(EvalError::SignedOverflow { at: i });
                    }
                    x.wrapping_rem(y) as u64
                }
            };
            vals.push(result & m);
        }
        if tracing {
            use crate::cost::OpClass;
            magicdiv_trace::event!("ir.eval",
                "width" => w,
                "executed" => class_counts[1..].iter().sum::<u64>(),
                "add_sub" => class_counts[OpClass::AddSub.index()],
                "shift" => class_counts[OpClass::Shift.index()],
                "bit_op" => class_counts[OpClass::BitOp.index()],
                "cmp" => class_counts[OpClass::Cmp.index()],
                "mul_low" => class_counts[OpClass::MulLow.index()],
                "mul_high" => class_counts[OpClass::MulHigh.index()],
                "div" => class_counts[OpClass::Div.index()]);
        }
        Ok(self.results().iter().map(|r| vals[r.index()]).collect())
    }

    /// Evaluates a single-result program, returning that value.
    ///
    /// # Errors
    ///
    /// As [`Program::eval`].
    ///
    /// # Panics
    ///
    /// Panics when the program returns more than one value.
    pub fn eval1(&self, args: &[u64]) -> Result<u64, EvalError> {
        let out = self.eval(args)?;
        assert_eq!(out.len(), 1, "eval1 requires a single-result program");
        Ok(out[0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn unop(width: u32, f: impl FnOnce(&mut Builder, crate::Reg) -> crate::Reg, x: u64) -> u64 {
        let mut b = Builder::new(width, 1);
        let a = b.arg(0);
        let r = f(&mut b, a);
        b.finish([r]).eval1(&[x]).unwrap()
    }

    fn binop(
        width: u32,
        f: impl FnOnce(&mut Builder, crate::Reg, crate::Reg) -> crate::Reg,
        x: u64,
        y: u64,
    ) -> u64 {
        let mut b = Builder::new(width, 2);
        let (a0, a1) = (b.arg(0), b.arg(1));
        let r = f(&mut b, a0, a1);
        b.finish([r]).eval1(&[x, y]).unwrap()
    }

    #[test]
    fn mask_and_sign_extend() {
        assert_eq!(mask(8), 0xff);
        assert_eq!(mask(64), u64::MAX);
        assert_eq!(sign_extend(0xff, 8), -1);
        assert_eq!(sign_extend(0x7f, 8), 127);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }

    #[test]
    fn arithmetic_wraps_at_width() {
        assert_eq!(binop(8, |b, x, y| b.push(Op::Add(x, y)), 200, 100), 44);
        assert_eq!(binop(8, |b, x, y| b.push(Op::Sub(x, y)), 1, 2), 0xff);
        assert_eq!(unop(8, |b, x| b.push(Op::Neg(x)), 1), 0xff);
        assert_eq!(
            binop(16, |b, x, y| b.push(Op::MulL(x, y)), 0x8000, 3),
            0x8000
        );
    }

    #[test]
    fn mul_high_halves_match_oracles() {
        for w in [8u32, 16, 32, 57, 64] {
            let samples: Vec<u64> = vec![
                0,
                1,
                2,
                3,
                mask(w) / 3,
                mask(w) >> 1,
                (mask(w) >> 1) + 1,
                mask(w),
            ];
            for &a in &samples {
                for &b in &samples {
                    let uh = binop(w, |bb, x, y| bb.push(Op::MulUH(x, y)), a, b);
                    let expect_u = ((a as u128 * b as u128) >> w) as u64 & mask(w);
                    assert_eq!(uh, expect_u, "muluh {a} {b} w={w}");
                    let sh = binop(w, |bb, x, y| bb.push(Op::MulSH(x, y)), a, b);
                    let expect_s = (((sign_extend(a, w) as i128) * (sign_extend(b, w) as i128))
                        >> w) as u64
                        & mask(w);
                    assert_eq!(sh, expect_s, "mulsh {a} {b} w={w}");
                }
            }
        }
    }

    #[test]
    fn shifts_and_xsign() {
        assert_eq!(unop(8, |b, x| b.push(Op::Sra(x, 2)), 0x84), 0xe1);
        assert_eq!(unop(8, |b, x| b.push(Op::Srl(x, 2)), 0x84), 0x21);
        assert_eq!(unop(8, |b, x| b.push(Op::Sll(x, 2)), 0x84), 0x10);
        assert_eq!(unop(8, |b, x| b.push(Op::Xsign(x)), 0x80), 0xff);
        assert_eq!(unop(8, |b, x| b.push(Op::Xsign(x)), 0x7f), 0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(binop(8, |b, x, y| b.push(Op::SltS(x, y)), 0xff, 0), 1); // -1 < 0
        assert_eq!(binop(8, |b, x, y| b.push(Op::SltU(x, y)), 0xff, 0), 0); // 255 > 0
        assert_eq!(binop(8, |b, x, y| b.push(Op::SltS(x, y)), 0, 0), 0);
    }

    #[test]
    fn divisions_and_zero_trap() {
        assert_eq!(binop(8, |b, x, y| b.push(Op::DivU(x, y)), 200, 7), 28);
        assert_eq!(binop(8, |b, x, y| b.push(Op::RemU(x, y)), 200, 7), 4);
        // -100 / 7 = -14 (trunc), rem -2.
        assert_eq!(
            binop(8, |b, x, y| b.push(Op::DivS(x, y)), 156, 7),
            (-14i64 as u64) & 0xff
        );
        assert_eq!(
            binop(8, |b, x, y| b.push(Op::RemS(x, y)), 156, 7),
            (-2i64 as u64) & 0xff
        );
        let mut b = Builder::new(8, 2);
        let d = b.push(Op::DivU(b.arg(0), b.arg(1)));
        let p = b.finish([d]);
        assert_eq!(p.eval(&[1, 0]), Err(EvalError::DivideByZero { at: 2 }));
    }

    #[test]
    fn signed_min_division_wraps() {
        // MIN / -1 wraps at the interpreted width, like the real ops.
        let q = binop(8, |b, x, y| b.push(Op::DivS(x, y)), 0x80, 0xff);
        assert_eq!(q, 0x80);
    }

    #[test]
    fn arg_count_checked() {
        let mut b = Builder::new(8, 2);
        let s = b.push(Op::Add(b.arg(0), b.arg(1)));
        let p = b.finish([s]);
        assert_eq!(
            p.eval(&[1]),
            Err(EvalError::ArgCount {
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn multi_result_programs() {
        let mut b = Builder::new(32, 2);
        let q = b.push(Op::DivU(b.arg(0), b.arg(1)));
        let r = b.push(Op::RemU(b.arg(0), b.arg(1)));
        let p = b.finish([q, r]);
        assert_eq!(p.eval(&[1234, 10]).unwrap(), vec![123, 4]);
    }

    #[test]
    fn trap_mode_reports_min_over_minus_one() {
        let mut b = Builder::new(8, 2);
        let q = b.push(Op::DivS(b.arg(0), b.arg(1)));
        let r = b.push(Op::RemS(b.arg(0), b.arg(1)));
        let p = b.finish([q, r]);
        let trap = EvalOptions {
            trap_signed_overflow: true,
            ..Default::default()
        };
        assert_eq!(
            p.eval_with(&[0x80, 0xff], &trap),
            Err(EvalError::SignedOverflow { at: 2 })
        );
        // Any other operands are unaffected by the trap flag.
        assert_eq!(p.eval_with(&[0x80, 0x01], &trap).unwrap(), vec![0x80, 0]);
        // And the default mode wraps.
        assert_eq!(p.eval(&[0x80, 0xff]).unwrap(), vec![0x80, 0]);
    }

    #[test]
    fn fuel_budget_is_enforced() {
        let mut b = Builder::new(32, 1);
        let mut acc = b.arg(0);
        for _ in 0..10 {
            acc = b.push(Op::Add(acc, acc));
        }
        let p = b.finish([acc]);
        let short = EvalOptions {
            fuel: Some(5),
            ..Default::default()
        };
        assert_eq!(
            p.eval_with(&[1], &short),
            Err(EvalError::FuelExhausted { limit: 5 })
        );
        let enough = EvalOptions {
            fuel: Some(64),
            ..Default::default()
        };
        assert_eq!(p.eval_with(&[1], &enough).unwrap(), vec![1024]);
    }

    #[test]
    fn eval_errors_convert_to_faults() {
        let f: Fault = EvalError::DivideByZero { at: 7 }.into();
        assert_eq!(f.layer, FaultLayer::IrInterp);
        assert_eq!(f.kind, FaultKind::DivideByZero);
        assert_eq!(f.at, Some(7));
        let f: Fault = EvalError::FuelExhausted { limit: 9 }.into();
        assert_eq!(f.kind, FaultKind::StepLimit { limit: 9 });
        assert_eq!(f.at, None);
    }

    #[test]
    fn args_are_masked_on_entry() {
        let b = Builder::new(8, 1);
        let a = b.arg(0);
        let p = b.finish([a]);
        assert_eq!(p.eval1(&[0x1ff]).unwrap(), 0xff);
    }
}
