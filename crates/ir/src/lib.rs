//! # magicdiv-ir — a tiny compiler IR over the paper's operation set
//!
//! Granlund & Montgomery implemented their algorithms inside GCC's
//! machine-independent code generation (§10). This crate is the equivalent
//! substrate for the reproduction: a straight-line SSA IR whose
//! instruction set is exactly the paper's Table 3.1 (`MULUH`, `MULSH`,
//! `MULL`, shifts, bit-ops, `XSIGN`, …) plus constants, arguments,
//! compares, and hardware division for baselines.
//!
//! * [`Builder`] / [`Program`] — construct and inspect programs;
//! * [`Program::eval`] — a bit-accurate interpreter at any width ≤ 64,
//!   the oracle against which generated code is verified;
//! * [`optimize`] — constant folding, algebraic simplification, CSE and
//!   DCE (the "obvious simplifications" §3 asks of the optimizer);
//! * [`lower_udiv`] and friends — lower a [`magicdiv::plan`] division
//!   plan to the matching Table 3.1 sequence;
//! * [`OpCounts`] — per-class operation counts, matching how the paper
//!   reports code-sequence costs.
//!
//! # Examples
//!
//! ```
//! use magicdiv_ir::{optimize, Builder, Op};
//!
//! // Unsigned division by 10 at N = 32 (the paper's Table 11.1 kernel).
//! let mut b = Builder::new(32, 1);
//! let n = b.arg(0);
//! let m = b.constant(0xcccc_cccd); // (2^34 + 1)/5
//! let hi = b.push(Op::MulUH(m, n));
//! let q = b.push(Op::Srl(hi, 3));
//! let prog = optimize(&b.finish([q]));
//!
//! for n in [0u64, 9, 10, 99, 1_000_000_007] {
//!     assert_eq!(prog.eval1(&[n]).unwrap(), n / 10);
//! }
//! assert_eq!(prog.op_counts().total_executed(), 2); // one mul, one shift
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod interp;
mod legalize;
mod lower;
mod mutate;
mod opt;
mod program;
mod schedule;

pub use crate::cost::{OpClass, OpCounts};
pub use crate::interp::{mask, sign_extend, EvalError, EvalOptions};
pub use crate::legalize::{legalize, TargetCaps};
pub use crate::lower::{
    lower_divisibility, lower_dword_div, lower_exact_div, lower_floor_div, lower_sdiv, lower_udiv,
    lower_urem,
};
pub use crate::mutate::{apply_mutation, mutations, Mutation};
pub use crate::opt::optimize;
pub use crate::program::{Builder, Op, OperandIter, Program, Reg};
pub use crate::schedule::{schedule, ScheduleWeights};
