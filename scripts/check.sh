#!/usr/bin/env bash
# Repo gate: formatting, lints, offline dependency audit, tier-1 verify.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Every harness bin appends a run record to the ledger; point it (and
# the explain archive and black-box dump dir) at target/ so CI runs
# never dirty results/. The accumulated ledger is schema-checked at the
# end of this script; the black-box smoke gate re-enables dumps with an
# explicit target/ path.
mkdir -p target
export MAGICDIV_LEDGER="$PWD/target/ledger_ci.jsonl"
export MAGICDIV_ARCHIVE=off
export MAGICDIV_BLACKBOX=off
rm -f "$MAGICDIV_LEDGER"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== panic-freedom gate: no unwrap()/panic! in library or binary code =="
cargo clippy --workspace --lib --bins --offline -- \
    -D warnings -D clippy::unwrap_used -D clippy::panic

echo "== offline dependency audit (no registry access) =="
cargo build --release --offline -p magicdiv -p magicdiv-ir \
    -p magicdiv-codegen -p magicdiv-simcpu

echo "== tier-1 verify: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== differential + mutation harness (fixed seed; corpus replay ran in tier-1) =="
cargo build --release --offline -p magicdiv-bench
./target/release/verify 20000 24029 --no-corpus-write

echo "== explain-plan goldens + trace-event pinning =="
cargo test -q --offline -p magicdiv-bench --test explain_golden
cargo test -q --offline -p magicdiv-simcpu --test trace_events

echo "== tournament goldens + winner drift gate (two same-build runs must agree) =="
cargo test -q --offline -p magicdiv-bench --test tournament_golden
for g in tournament_8_35 tournament_32_7 tournament_64_25; do
    test -s "crates/bench/tests/golden/$g.txt" || {
        echo "missing golden crates/bench/tests/golden/$g.txt" >&2
        echo "regenerate: UPDATE_GOLDEN=1 cargo test -p magicdiv-bench --test tournament_golden" >&2
        exit 1
    }
done

echo "== dword explain snapshots present at every machine width =="
for g in dword_8_10 dword_16_255 dword_32_10 dword_32_4294967295 dword_64_7; do
    test -s "crates/bench/tests/golden/$g.txt" || {
        echo "missing golden crates/bench/tests/golden/$g.txt" >&2
        echo "regenerate: UPDATE_GOLDEN=1 cargo test -p magicdiv-bench --test explain_golden" >&2
        exit 1
    }
done

echo "== remainder & divisibility explain snapshots present =="
for g in urem_32_16 urem_32_10 urem_64_7 divtest_16_8 divtest_32_10 divtest_64_7; do
    test -s "crates/bench/tests/golden/$g.txt" || {
        echo "missing golden crates/bench/tests/golden/$g.txt" >&2
        echo "regenerate: UPDATE_GOLDEN=1 cargo test -p magicdiv-bench --test explain_golden" >&2
        exit 1
    }
done

echo "== explain-plan JSON drift gate (two runs must agree byte-for-byte) =="
mkdir -p target
./target/release/magic explain 32 10 dword --json > target/explain_drift_a.jsonl
./target/release/magic explain 32 10 dword --json > target/explain_drift_b.jsonl
diff -u target/explain_drift_a.jsonl target/explain_drift_b.jsonl || {
    echo "magic explain --json is nondeterministic between runs" >&2
    exit 1
}

echo "== urem tournament drift gate (remainder scoreboard must be deterministic) =="
./target/release/magic explain 32 10 urem --json > target/urem_drift_a.jsonl
./target/release/magic explain 32 10 urem --json > target/urem_drift_b.jsonl
diff -u target/urem_drift_a.jsonl target/urem_drift_b.jsonl || {
    echo "magic explain urem --json is nondeterministic between runs" >&2
    exit 1
}
grep -q '"name":"plan.remainder"' target/urem_drift_a.jsonl || {
    echo "urem explain stream lost its plan.remainder event" >&2
    exit 1
}
grep -q '"name":"plan.tournament"' target/urem_drift_a.jsonl || {
    echo "urem explain stream carries no remainder-tournament scoreboard" >&2
    exit 1
}

echo "== bench report self-diff (bench-compare must find zero regressions) =="
mkdir -p target
./target/release/bench 50 target/bench_ci.json > /dev/null
./target/release/bench-compare target/bench_ci.json target/bench_ci.json 5

echo "== calibration smoke run (tiny budget; report must parse) =="
./target/release/magic calibrate 20 2 target/calibration_ci.json > /dev/null

echo "== chaos smoke gate (fixed seed; zero silently wrong quotients) =="
# Exit 1 from `magic chaos` means an injected fault produced a quotient
# that was served without any error signal — the one outcome the
# guarded service exists to prevent.
./target/release/magic chaos 0xC4A05D1F 4 target/chaos_ci.json > /dev/null
grep -q '"silent_wrong": 0,' target/chaos_ci.json || {
    echo "chaos report does not pin silent_wrong to zero" >&2
    exit 1
}

echo "== chaos drift gate (same seed, same build: guard/cache counters must agree) =="
rm -rf target/chaos_drift_a target/chaos_drift_b
sha="$(git rev-parse HEAD)"
MAGICDIV_ARCHIVE="$PWD/target/chaos_drift_a" \
    ./target/release/magic chaos 0xC4A05D1F 4 target/chaos_drift_a.json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/chaos_drift_b" \
    ./target/release/magic chaos 0xC4A05D1F 4 target/chaos_drift_b.json > /dev/null
./target/release/drift "target/chaos_drift_a/$sha" "target/chaos_drift_b/$sha" || {
    echo "chaos counters (guard demotions / cache poisonings) drifted between identical runs" >&2
    exit 1
}

echo "== metrics exposition golden (same seed twice must be byte-identical) =="
./target/release/magic metrics 42 2000 > target/expo_ci_a.prom
./target/release/magic metrics 42 2000 > target/expo_ci_b.prom
diff -u target/expo_ci_a.prom target/expo_ci_b.prom || {
    echo "magic metrics exposition is nondeterministic between same-seed runs" >&2
    exit 1
}
grep -q '^# TYPE ' target/expo_ci_a.prom || {
    echo "exposition carries no # TYPE lines" >&2
    exit 1
}
grep -q '{d="other"}' target/expo_ci_a.prom || {
    echo "exposition lost its bounded-cardinality {d=\"other\"} bucket" >&2
    exit 1
}

echo "== black-box dump smoke (forced demotion must snapshot the event ring) =="
sha="$(git rev-parse HEAD)"
rm -rf target/blackbox_ci
MAGICDIV_BLACKBOX="$PWD/target/blackbox_ci" \
    ./target/release/magic chaos 0xC4A05D1F 2 target/chaos_bb_ci.json > /dev/null
dump="$(find "target/blackbox_ci/$sha" -name 'blackbox_*_guard_demotion.jsonl' 2>/dev/null | sort | head -n 1)"
test -n "$dump" && test -s "$dump" || {
    echo "forced-demotion chaos run produced no guard.demotion black-box dump" >&2
    exit 1
}
# The trigger event must be the last ring entry and carry the offending
# divisor key.
tail -n 1 "$dump" | grep -q '"name":"guard.demotion"' || {
    echo "black-box dump does not end with the guard.demotion trigger event" >&2
    exit 1
}
tail -n 1 "$dump" | grep -q '"d":' || {
    echo "black-box trigger event does not carry the offending divisor key" >&2
    exit 1
}

echo "== tracing overhead budget gate (tracing-off free, recorder within budget) =="
./target/release/bench overhead 2000 target/overhead_ci.json > /dev/null || {
    echo "tracing overhead exceeded its pinned budget — see target/overhead_ci.json" >&2
    exit 1
}

echo "== drift self-diff (two archives of the same build must report zero drift) =="
sha="$(git rev-parse HEAD)"
rm -rf target/drift_ci_a target/drift_ci_b
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_a" \
    ./target/release/magic explain 32 7 unsigned --json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_a" \
    ./target/release/magic explain 32 10 dword --json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_a" \
    ./target/release/magic explain 32 10 urem --json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_b" \
    ./target/release/magic explain 32 7 unsigned --json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_b" \
    ./target/release/magic explain 32 10 dword --json > /dev/null
MAGICDIV_ARCHIVE="$PWD/target/drift_ci_b" \
    ./target/release/magic explain 32 10 urem --json > /dev/null
# Fold the exposition goldens in as .prom snapshots so the drift bin's
# metrics differ runs in CI too.
cp target/expo_ci_a.prom "target/drift_ci_a/$sha/metrics.prom"
cp target/expo_ci_b.prom "target/drift_ci_b/$sha/metrics.prom"
./target/release/drift "target/drift_ci_a/$sha" "target/drift_ci_b/$sha" || {
    echo "same-build archive snapshots drifted" >&2
    exit 1
}

echo "== run-ledger schema validation (every record this script appended) =="
test -s "$MAGICDIV_LEDGER" || {
    echo "no ledger records were appended at $MAGICDIV_LEDGER" >&2
    exit 1
}
./target/release/drift check-ledger "$MAGICDIV_LEDGER"

echo "== all checks passed =="
