#!/usr/bin/env bash
# Repo gate: formatting, lints, offline dependency audit, tier-1 verify.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (workspace, -D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== offline dependency audit (no registry access) =="
cargo build --release --offline -p magicdiv -p magicdiv-ir \
    -p magicdiv-codegen -p magicdiv-simcpu

echo "== tier-1 verify: cargo build --release && cargo test -q =="
cargo build --release --offline
cargo test -q --offline

echo "== all checks passed =="
