//! Interactive code-generation explorer: show everything the compiler
//! side produces for a divisor — the strategy Figure 4.2/5.2 picks, the
//! IR, the assembly for all four Table 11.1 targets, and the simulated
//! cycle cost on every Table 1.1 machine.
//!
//! Run with: `cargo run --example codegen_explorer -- [divisor] [width]`
//! e.g. `cargo run --example codegen_explorer -- -7 32`

use magicdiv_suite::magicdiv::{SignedDivisor, UnsignedDivisor};
use magicdiv_suite::magicdiv_codegen::{
    emit_assembly, gen_signed_div, gen_unsigned_div, gen_unsigned_div_hw, Target,
};
use magicdiv_suite::magicdiv_simcpu::{cycles_for_program, table_1_1};

fn main() {
    let d: i64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    let width: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(32);
    if d == 0 {
        eprintln!("divisor must be nonzero");
        std::process::exit(1);
    }

    println!("== Code generation for n / {d} at N = {width} ==\n");

    if d > 0 {
        if width == 32 {
            let ud = UnsignedDivisor::<u32>::new(d as u32).expect("nonzero");
            println!("unsigned strategy (Fig 4.2): {:?}", ud.strategy());
        } else if width == 64 {
            let ud = UnsignedDivisor::<u64>::new(d as u64).expect("nonzero");
            println!("unsigned strategy (Fig 4.2): {:?}", ud.strategy());
        }
    }
    if width == 32 {
        let sd = SignedDivisor::<i32>::new(d as i32).expect("nonzero");
        println!("signed strategy   (Fig 5.2): {:?}", sd.strategy());
    } else if width == 64 {
        let sd = SignedDivisor::<i64>::new(d).expect("nonzero");
        println!("signed strategy   (Fig 5.2): {:?}", sd.strategy());
    }

    let prog = if d > 0 {
        gen_unsigned_div(d as u64, width)
    } else {
        gen_signed_div(d, width)
    };
    println!("\n-- IR ({}) --\n{prog}\n", prog.op_counts());

    println!("-- assembly, four targets --");
    for &t in &Target::ALL {
        println!("\n[{t}]");
        print!("{}", emit_assembly(&prog, t, "divide"));
    }

    println!("\n-- simulated cycles per quotient (Table 1.1 machines) --\n");
    let hw = gen_unsigned_div_hw(width.min(64));
    println!(
        "{:28} {:>8} {:>8} {:>8}",
        "machine", "magic", "divide", "speedup"
    );
    for model in table_1_1() {
        let magic = cycles_for_program(&prog, &model);
        let div = cycles_for_program(&hw, &model);
        println!(
            "{:28} {:>8} {:>8} {:>7.1}x",
            model.name,
            magic,
            div,
            div as f64 / magic as f64
        );
    }
}
