//! The §11 hashing workload: a prime-modulus hash table whose bucket
//! reduction uses the hoisted magic reciprocal instead of `%`, with a
//! live timing comparison (build with `--release` for meaningful
//! numbers).
//!
//! Run with: `cargo run --release --example hash_table`

use std::time::Instant;

use magicdiv_suite::magicdiv_workloads::{hashing_kernel, PrimeHashTable, Reduction};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Correctness demo: identical behaviour under both reductions.
    let mut magic = PrimeHashTable::new(1009, Reduction::MagicRemainder)?;
    let mut hw = PrimeHashTable::new(1009, Reduction::HardwareRemainder)?;
    for k in 0..500u64 {
        magic.insert(k * k, k);
        hw.insert(k * k, k);
    }
    for k in 0..700u64 {
        assert_eq!(magic.get(k * k), hw.get(k * k));
    }
    println!("500 inserts + 700 lookups agree under both reductions.");

    // Timing: the run-time-invariant prime means the compiler cannot
    // constant-fold the `%` away; the reciprocal can still be hoisted.
    let prime = 1_000_003u64;
    let (n, lookups, reps) = (100_000u64, 400_000u64, 5);

    let t = Instant::now();
    let mut sink = 0u64;
    for _ in 0..reps {
        sink ^= hashing_kernel(prime, n, lookups, Reduction::HardwareRemainder);
    }
    let hw_time = t.elapsed();

    let t = Instant::now();
    for _ in 0..reps {
        sink ^= hashing_kernel(prime, n, lookups, Reduction::MagicRemainder);
    }
    let magic_time = t.elapsed();
    std::hint::black_box(sink);

    println!("\nprime = {prime}, {n} entries, {lookups} lookups x{reps}:");
    println!("  hardware %%:        {hw_time:?}");
    println!("  magic reciprocal:  {magic_time:?}");
    println!(
        "  speedup:           {:.2}x (paper reports up to ~1.3x whole-benchmark on SPEC92 hashing)",
        hw_time.as_secs_f64() / magic_time.as_secs_f64()
    );
    Ok(())
}
