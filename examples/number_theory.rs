//! Number-theoretic workloads (§1, §11): modular exponentiation with the
//! §8 doubleword reduction, trial-division primality, the §9
//! strength-reduced divisibility loop, and the GCD counterexample.
//!
//! Run with: `cargo run --release --example number_theory`

use magicdiv_suite::magicdiv::DivisibilityScanner;
use magicdiv_suite::magicdiv_workloads::{
    count_primes, gcd, gcd_with_per_iteration_reciprocal, mod_pow, to_base, trip_count,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Modular exponentiation: the modulus is the invariant divisor; each
    // square-and-multiply step reduces a 128-bit product with Fig 8.1.
    let p = 0xffff_ffff_ffff_ffc5u64; // largest prime below 2^64
    let a = 1_234_567_890_123_456_789u64;
    let powered = mod_pow(a, p - 1, p)?;
    println!("Fermat check: {a}^(p-1) mod p = {powered} (expect 1)");
    assert_eq!(powered, 1);

    // Primality by trial division with precomputed reciprocals.
    let primes_below_100k = count_primes(100_000, true);
    println!("pi(100000) = {primes_below_100k} (expect 9592)");
    assert_eq!(primes_below_100k, 9592);

    // The paper's closing example: which i in 0..imax satisfy i % 100 == 0,
    // with no multiply or divide in the loop.
    let hits: Vec<usize> = DivisibilityScanner::<i32>::new(100)?
        .take(1000)
        .enumerate()
        .filter_map(|(i, yes)| yes.then_some(i))
        .collect();
    println!("multiples of 100 below 1000: {hits:?}");

    // Loop-count computation (§1): how many iterations does
    // `for (i = lo; i < hi; i += step)` run?
    println!(
        "trip_count(17, 1_000_000, 37) = {}",
        trip_count(17, 1_000_000, 37)?
    );

    // Base conversion with an invariant base.
    println!("2^61 - 1 in base 7 = {}", to_base((1 << 61) - 1, 7)?);

    // The counterexample: Euclid's GCD changes its divisor each step, so
    // per-iteration reciprocals are pure overhead (§1's caveat).
    let (x, y) = (0x9e37_79b9_7f4a_7c15u64, 0x517c_c1b7_2722_0a95u64);
    assert_eq!(gcd(x, y), gcd_with_per_iteration_reciprocal(x, y));
    println!(
        "gcd({x:#x}, {y:#x}) = {} — correct either way, but the reciprocal \
         version is slower (see `cargo bench gcd_invariance_caveat`)",
        gcd(x, y)
    );
    Ok(())
}
