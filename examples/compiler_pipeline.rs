//! The full §10 compiler pipeline, end to end on one divisor:
//!
//! 1. generate the division code (Figure 4.2),
//! 2. legalize for a machine lacking unsigned multiply-high (the
//!    POWER/RIOS "signed only" footnote of Table 1.1),
//! 3. list-schedule for the machine's latencies,
//! 4. emit assembly — and for the radix loop, *execute the emitted text*
//!    with the assembly interpreter to prove the listing right.
//!
//! Run with: `cargo run --example compiler_pipeline -- [divisor]`

use magicdiv_suite::magicdiv_codegen::{
    emit_radix_loop, execute_radix_listing, gen_unsigned_div, gen_unsigned_div_tuned, MachineDesc,
    Target,
};
use magicdiv_suite::magicdiv_ir::{legalize, schedule, ScheduleWeights, TargetCaps};
use magicdiv_suite::magicdiv_simcpu::{cycles_for_program, find_model};

fn main() {
    let d: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);
    if d == 0 {
        eprintln!("divisor must be nonzero");
        std::process::exit(1);
    }

    println!("== 1. Machine-independent code (Fig 4.2) for n / {d} ==\n");
    let prog = gen_unsigned_div(d, 32);
    println!("{prog}\n   [{}]", prog.op_counts());

    println!("\n== 2. Legalized for POWER/RIOS (no unsigned multiply-high) ==\n");
    let legal = legalize(&prog, TargetCaps::POWER_RIOS);
    println!("{legal}\n   [{}]", legal.op_counts());
    for n in [0u64, 9, 1994, u32::MAX as u64] {
        assert_eq!(legal.eval1(&[n]).unwrap(), n / d);
    }
    println!("   (verified against native division)");

    println!("\n== 3. Scheduled for the R3000's pipelined 12-cycle multiplier ==\n");
    let r3000 = find_model("R3000").unwrap();
    let sched = schedule(
        &prog,
        ScheduleWeights {
            multiply: r3000.mul_high_cycles,
            divide: r3000.div_cycles,
            simple: 1,
        },
    );
    println!(
        "cycles on R3000: {} before, {} after scheduling",
        cycles_for_program(&prog, &r3000),
        cycles_for_program(&sched, &r3000)
    );

    println!("\n== 4. Machine-tuned for an Alpha-like machine (23-cycle multiply) ==\n");
    let alpha_like = MachineDesc {
        width: 32,
        mul_cycles: 23,
        div_cycles: 200,
        caps: TargetCaps::FULL,
        wide_registers: true,
    };
    let tuned = gen_unsigned_div_tuned(d, &alpha_like);
    println!(
        "tuned program uses multiply: {} ({} ops)",
        tuned.op_counts().uses_multiply(),
        tuned.op_counts().total_executed()
    );

    println!("\n== 5. Emitted radix loop, executed as assembly text ==\n");
    for target in [Target::Mips, Target::X86] {
        let asm = emit_radix_loop(target, true);
        let out = execute_radix_listing(&asm, 271_828_182).expect("listing executes");
        println!("{target}: decimal(271828182) = {out}");
        assert_eq!(out, "271828182");
    }
    println!("\nPipeline complete: generated, legalized, scheduled, emitted, executed.");
}
