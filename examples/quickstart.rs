//! Quickstart: the five-minute tour of `magicdiv`.
//!
//! Run with: `cargo run --example quickstart`

use magicdiv_suite::magicdiv::{
    DWord, DwordDivisor, ExactSignedDivisor, FloorDivisor, InvariantUnsignedDivisor, SignedDivisor,
    UnsignedDivisor,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------
    // 1. Unsigned division by a constant (§4, Fig 4.2).
    // ---------------------------------------------------------------
    let by10 = UnsignedDivisor::<u32>::new(10)?;
    println!("strategy for /10: {:?}", by10.strategy());
    assert_eq!(by10.divide(1_000_000_007), 100_000_000);
    assert_eq!(by10.div_rem(1994), (199, 4));
    // Operators work too (on a reference, since the divisor is reused):
    assert_eq!(12345u32 / &by10, 1234);
    assert_eq!(12345u32 % &by10, 5);

    // ---------------------------------------------------------------
    // 2. Run-time invariant divisors (§4, Fig 4.1) — the divisor is not
    //    known until run time, but is fixed across a loop.
    // ---------------------------------------------------------------
    let divisor_from_input = 1994u64; // imagine this came from argv
    let inv = InvariantUnsignedDivisor::new(divisor_from_input)?;
    let total: u64 = (0..1_000u64).map(|i| inv.divide(i * 123_456_789)).sum();
    println!("sum of 1000 quotients by {divisor_from_input}: {total}");

    // ---------------------------------------------------------------
    // 3. Signed division: trunc (§5) and floor (§6) rounding.
    // ---------------------------------------------------------------
    let trunc = SignedDivisor::<i32>::new(-7)?;
    let floor = FloorDivisor::<i32>::new(7)?;
    assert_eq!(trunc.divide(-100), 14); // C-style: rounds toward zero
    assert_eq!(floor.divide(-100), -15); // Python-style: rounds down
    assert_eq!(floor.modulus(-100), 5); // mod takes the divisor's sign
    println!(
        "trunc(-100 / -7) = {}, floor(-100 / 7) = {}",
        trunc.divide(-100),
        floor.divide(-100)
    );

    // ---------------------------------------------------------------
    // 4. 128-by-64-bit division (§8) — the multi-precision primitive.
    // ---------------------------------------------------------------
    let modulus = 0xffff_ffff_ffff_ffc5u64; // largest 64-bit prime
    let dd = DwordDivisor::new(modulus)?;
    let wide = DWord::from_parts(0x1234_5678, 0x9abc_def0_1122_3344);
    let (q, r) = dd.div_rem(wide)?;
    println!("(2^64*0x12345678 + ...) / p: q={q:#x} r={r:#x}");

    // ---------------------------------------------------------------
    // 5. Exact division and divisibility without remainders (§9).
    // ---------------------------------------------------------------
    let size = ExactSignedDivisor::<i64>::new(24)?; // 24-byte records
    assert_eq!(size.divide_exact(24 * 1000), 1000);
    assert!(size.divides(4800));
    assert!(!size.divides(4801));
    println!("divisibility by 24 without a remainder: OK");

    println!("\nAll quickstart checks passed.");
    Ok(())
}
