//! Figure 11.1, live: binary-to-decimal conversion with the division
//! eliminated, plus the generated code and its simulated cost on the
//! paper's eight Table 11.2 machines.
//!
//! Run with: `cargo run --example radix_conversion [number]`

use magicdiv_suite::magicdiv_codegen::{emit_radix_loop, radix_body, RadixStyle, Target};
use magicdiv_suite::magicdiv_simcpu::{radix_conversion_timing, table_11_2_models};
use magicdiv_suite::magicdiv_workloads::{decimal_baseline, decimal_magic};

fn main() {
    let x: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_718_281_828);

    println!("== Figure 11.1: converting {x} to decimal ==\n");
    println!("with division:    {}", decimal_baseline(x));
    println!("division removed: {}", decimal_magic(x));
    assert_eq!(decimal_baseline(x), decimal_magic(x));

    println!("\n== The loop body as IR (division eliminated) ==\n");
    let body = radix_body(32, RadixStyle::Magic);
    println!("{body}\n");
    println!("op counts: {}", body.op_counts());

    println!("\n== As MIPS assembly (Table 11.1 shape) ==\n");
    print!("{}", emit_radix_loop(Target::Mips, true));

    println!("\n== Simulated on the paper's Table 11.2 machines ==\n");
    for model in table_11_2_models() {
        let t = radix_conversion_timing(&model);
        println!(
            "{:28} {:>7} cycles with div, {:>6} without -> {:>5.1}x",
            model.name,
            t.cycles_with_division,
            t.cycles_without_division,
            t.speedup()
        );
    }
}
